"""Parser for Datalog program text.

PR 4 gave the UCRPQ parser caret-snippet errors; this parser extends the
same treatment to Datalog so parse errors and analyzer diagnostics share
one formatting path (:func:`repro.errors.format_snippet`).  The accepted
syntax is the classic rule form::

    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    safe(X)    :- node(X), not blocked(X).
    ?- path(a, Y).

* Identifiers starting with an upper-case letter or ``_`` are variables;
  everything else (including quoted strings and integers) is a constant.
* ``not atom`` (or ``! atom``) is a negative literal.  Negation is
  parsed — and checked for safety and stratification by
  :mod:`repro.check` — but the semi-naive engine evaluates positive
  programs only and rejects it at evaluation time.
* ``?- atom.`` names the goal predicate.  Without a goal directive the
  head predicate of the last rule is the goal.
* ``%`` and ``#`` start comments running to the end of the line.

Parse errors raise :class:`~repro.errors.DatalogParseError` carrying the
0-based character ``position``, the ``source`` text and a stable
diagnostic ``code`` so the analyzer can forward them as structured
diagnostics.  Safety violations (head or negated variables unbound in
the positive body) are detected **before** rule construction so they
point at the offending variable instead of stringifying the whole rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ...errors import DatalogParseError, format_snippet, line_and_column
from .ast import Atom, Const, Program, Rule, Var

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER = re.compile(r"-?\d+")
_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

_TOKEN_SPEC = [
    ("IMPLIES", re.compile(r":-")),
    ("QUERY", re.compile(r"\?-")),
    ("LPAREN", re.compile(r"\(")),
    ("RPAREN", re.compile(r"\)")),
    ("COMMA", re.compile(r",")),
    ("PERIOD", re.compile(r"\.")),
    ("BANG", re.compile(r"!")),
    ("STRING", _STRING),
    ("NUMBER", _NUMBER),
    ("IDENT", _IDENT),
]


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    @property
    def end(self) -> int:
        return self.position + len(self.text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def datalog_parse_error(message: str, source: str, position: int, *,
                        length: int = 1,
                        code: str = "DL001") -> DatalogParseError:
    """Build a :class:`DatalogParseError` with a caret snippet.

    Datalog programs span multiple lines, so the message locates the
    error by line and column; the snippet shows the offending line only
    — the exact rendering :func:`repro.errors.format_snippet` gives the
    UCRPQ parser and the diagnostics printer.
    """
    position = max(0, min(position, len(source)))
    line, column = line_and_column(source, position)
    snippet = format_snippet(source, position, length)
    error = DatalogParseError(
        f"{message} at line {line}, column {column}\n{snippet}")
    error.position = position
    error.source = source
    error.length = length
    error.code = code
    return error


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char in "%#":
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        for kind, pattern in _TOKEN_SPEC:
            match = pattern.match(text, position)
            if match:
                tokens.append(_Token(kind, match.group(), position))
                position = match.end()
                break
        else:
            raise datalog_parse_error(f"unexpected character {char!r}",
                                      text, position)
    return tokens


# -- Span bookkeeping ----------------------------------------------------------

Span = tuple[int, int]


@dataclass
class AtomSpans:
    """Source spans of one literal: the whole literal and each argument."""

    span: Span
    args: tuple[Span, ...] = ()


@dataclass
class RuleSpans:
    """Source spans of one rule, aligned with ``Program.rules``."""

    span: Span
    head: AtomSpans
    body: list[AtomSpans] = field(default_factory=list)


@dataclass
class ProgramSpans:
    """Per-rule spans of a parsed program, in rule order."""

    source: str
    rules: list[RuleSpans] = field(default_factory=list)
    goal: Span | None = None


class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise datalog_parse_error("unexpected end of program",
                                      self._source, len(self._source))
        self._index += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise datalog_parse_error(
                f"expected {what} but found {token.text!r}",
                self._source, token.position, length=len(token.text))
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # -- Grammar --------------------------------------------------------------

    def parse_program(self, goal: str | None) -> tuple[Program, ProgramSpans]:
        rules: list[Rule] = []
        spans = ProgramSpans(self._source)
        goal_from_directive: str | None = None
        while self._peek() is not None:
            if self._accept("QUERY"):
                atom, atom_spans = self._parse_atom(negated=False)
                self._expect("PERIOD", "'.'")
                goal_from_directive = atom.predicate
                spans.goal = atom_spans.span
                continue
            rule, rule_spans = self._parse_rule()
            rules.append(rule)
            spans.rules.append(rule_spans)
        if not rules:
            raise datalog_parse_error("empty program", self._source, 0)
        if goal is None:
            goal = goal_from_directive or rules[-1].head.predicate
        return Program(rules=rules, goal=goal), spans

    def _parse_rule(self) -> tuple[Rule, RuleSpans]:
        head, head_spans = self._parse_atom(negated=False)
        if head.negated:
            raise datalog_parse_error("rule heads cannot be negated",
                                      self._source, head_spans.span[0],
                                      code="DL005")
        body: list[Atom] = []
        body_spans: list[AtomSpans] = []
        if self._accept("IMPLIES"):
            atom, atom_spans = self._parse_literal()
            body.append(atom)
            body_spans.append(atom_spans)
            while self._accept("COMMA"):
                atom, atom_spans = self._parse_literal()
                body.append(atom)
                body_spans.append(atom_spans)
        period = self._expect("PERIOD", "'.'")
        self._check_safety(head, head_spans, body, body_spans)
        rule = Rule(head, tuple(body))
        rule_spans = RuleSpans((head_spans.span[0], period.end),
                               head_spans, body_spans)
        return rule, rule_spans

    def _parse_literal(self) -> tuple[Atom, AtomSpans]:
        start: int | None = None
        negated = False
        bang = self._accept("BANG")
        if bang is not None:
            negated = True
            start = bang.position
        else:
            token = self._peek()
            if token is not None and token.kind == "IDENT" \
                    and token.text == "not":
                self._index += 1
                negated = True
                start = token.position
        atom, spans = self._parse_atom(negated=negated)
        if start is not None:
            spans = AtomSpans((start, spans.span[1]), spans.args)
        return atom, spans

    def _parse_atom(self, *, negated: bool) -> tuple[Atom, AtomSpans]:
        name = self._expect("IDENT", "a predicate name")
        if name.text == "not":
            raise datalog_parse_error("'not' cannot negate a negation",
                                      self._source, name.position, length=3)
        self._expect("LPAREN", "'('")
        args = []
        arg_spans: list[Span] = []
        argument, span = self._parse_term()
        args.append(argument)
        arg_spans.append(span)
        while self._accept("COMMA"):
            argument, span = self._parse_term()
            args.append(argument)
            arg_spans.append(span)
        closing = self._expect("RPAREN", "')'")
        atom = Atom(name.text, tuple(args), negated=negated)
        return atom, AtomSpans((name.position, closing.end),
                               tuple(arg_spans))

    def _parse_term(self):
        token = self._next()
        span = (token.position, token.end)
        if token.kind == "IDENT":
            if token.text[0].isupper() or token.text[0] == "_":
                return Var(token.text.lower()), span
            return Const(token.text), span
        if token.kind == "NUMBER":
            return Const(int(token.text)), span
        if token.kind == "STRING":
            return Const(token.text[1:-1].replace('\\"', '"')), span
        raise datalog_parse_error(
            f"expected a variable or constant but found {token.text!r}",
            self._source, token.position, length=len(token.text))

    def _check_safety(self, head: Atom, head_spans: AtomSpans,
                      body: list[Atom],
                      body_spans: list[AtomSpans]) -> None:
        """Raise a span-carrying error for unsafe rules.

        Runs **before** :class:`Rule` construction, whose own safety
        check would stringify the whole rule without a source location.
        """
        positive = {var for atom in body if not atom.negated
                    for var in atom.variables()}
        if body:
            for argument, span in zip(head.args, head_spans.args):
                if isinstance(argument, Var) and argument not in positive:
                    raise datalog_parse_error(
                        f"unsafe rule: head variable {str(argument)!r} does "
                        f"not occur in a positive body atom",
                        self._source, span[0], length=span[1] - span[0],
                        code="DL003")
        for atom, spans in zip(body, body_spans):
            if not atom.negated:
                continue
            for argument, span in zip(atom.args, spans.args):
                if isinstance(argument, Var) and argument not in positive:
                    raise datalog_parse_error(
                        f"unsafe negation: variable {str(argument)!r} occurs "
                        f"only under negation",
                        self._source, span[0], length=span[1] - span[0],
                        code="DL004")


def parse_program(text: str, *, goal: str | None = None) -> Program:
    """Parse Datalog program text into a :class:`Program`.

    >>> program = parse_program('''
    ...     path(X, Y) :- edge(X, Y).
    ...     path(X, Y) :- path(X, Z), edge(Z, Y).
    ... ''')
    >>> program.goal
    'path'
    """
    program, _ = parse_program_spanned(text, goal=goal)
    return program


def parse_program_spanned(
        text: str, *,
        goal: str | None = None) -> tuple[Program, ProgramSpans]:
    """Parse a program and also return per-rule source spans.

    The spans line up index-for-index with ``program.rules`` and are what
    lets :mod:`repro.check` point analyzer diagnostics at the offending
    literal of a multi-line program.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise datalog_parse_error("empty program", text, 0)
    return _Parser(tokens, text).parse_program(goal)
