"""Translation of UCRPQ queries into Datalog programs.

This is how the BigDatalog baseline receives the benchmark queries.  The
translation is the standard one and — crucially for the comparison — it is
*directional*: every transitive closure becomes a left-linear recursion
evaluated left to right.  Datalog engines have no equivalent of the mu-RA
fixpoint reversal or fixpoint merging rules, so:

* a filter on the right of a closure cannot be pushed into it,
* a concatenation of closures ``a+/b+`` materialises both closures before
  joining them.

Those are exactly the behaviours the paper's experiments exhibit.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from ...data.graph import INVERSE_PREFIX, SRC, TRG, LabeledGraph
from ...data.relation import Relation
from ...errors import TranslationError
from ...query.ast import (Alternation, Concat, Constant,
                          Label, PathExpr, Plus, UCRPQ, Variable)
from .ast import Atom, Const, Program, Rule, Var

GOAL_PREDICATE = "answer"


class DatalogTranslator:
    """Translate UCRPQs into Datalog programs over per-label EDB predicates."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self.program = Program(goal=GOAL_PREDICATE)

    # -- Public API -----------------------------------------------------------

    def translate(self, query: UCRPQ) -> Program:
        head_args = tuple(Var(variable.name) for variable in query.head)
        for rule in query.rules:
            body: list[Atom] = []
            for atom in rule.atoms:
                subject = self._endpoint(atom.subject)
                obj = self._endpoint(atom.obj)
                body.extend(self._path_atoms(atom.path, subject, obj))
            self.program.add(Rule(Atom(GOAL_PREDICATE, head_args), tuple(body)))
        return self.program

    # -- Path expressions -------------------------------------------------------

    def _path_atoms(self, path: PathExpr, start, end) -> list[Atom]:
        """Atoms asserting that ``end`` is reachable from ``start`` via ``path``."""
        if isinstance(path, Label):
            if path.inverse:
                return [Atom(path.name, (end, start))]
            return [Atom(path.name, (start, end))]
        if isinstance(path, Concat):
            atoms: list[Atom] = []
            current = start
            for index, part in enumerate(path.parts):
                is_last = index == len(path.parts) - 1
                nxt = end if is_last else self._fresh_var()
                atoms.extend(self._path_atoms(part, current, nxt))
                current = nxt
            return atoms
        if isinstance(path, (Alternation, Plus)):
            predicate = self._define_predicate(path)
            return [Atom(predicate, (start, end))]
        raise TranslationError(f"cannot translate path expression {path!r}")

    def _define_predicate(self, path: PathExpr) -> str:
        """Create an IDB predicate computing a composite path expression."""
        if isinstance(path, Alternation):
            predicate = self._fresh_predicate("alt")
            for option in path.options:
                x, y = Var("x"), Var("y")
                self.program.add(Rule(Atom(predicate, (x, y)),
                                      tuple(self._path_atoms(option, x, y))))
            return predicate
        if isinstance(path, Plus):
            predicate = self._fresh_predicate("tc")
            x, y, z = Var("x"), Var("y"), Var("z")
            base = self._path_atoms(path.inner, x, y)
            self.program.add(Rule(Atom(predicate, (x, y)), tuple(base)))
            # Left-linear recursion, evaluated left to right: tc(x,y) :-
            # tc(x,z), inner(z,y).  This is the fixed direction Datalog
            # engines are stuck with.
            step = self._path_atoms(path.inner, z, y)
            self.program.add(Rule(Atom(predicate, (x, y)),
                                  (Atom(predicate, (x, z)), *step)))
            return predicate
        raise TranslationError(f"no predicate definition for {path!r}")

    # -- Helpers ---------------------------------------------------------------------

    @staticmethod
    def _endpoint(endpoint):
        if isinstance(endpoint, Variable):
            return Var(endpoint.name)
        if isinstance(endpoint, Constant):
            return Const(endpoint.value)
        raise TranslationError(f"unknown endpoint {endpoint!r}")

    def _fresh_var(self) -> Var:
        return Var(f"mid{next(self._counter)}")

    def _fresh_predicate(self, stem: str) -> str:
        return f"{stem}_{next(self._counter)}"


def ucrpq_to_datalog(query: UCRPQ) -> Program:
    """Translate one UCRPQ into a Datalog program with goal ``answer``."""
    return DatalogTranslator().translate(query)


def graph_to_edb(graph: LabeledGraph) -> dict[str, set[tuple]]:
    """Extract the extensional database (one predicate per label) of a graph."""
    edb: dict[str, set[tuple]] = {}
    for label in graph.labels:
        edb[label] = graph.edges(label).to_pairs("src", "trg")
    return edb


def database_to_edb(database: Mapping[str, Relation]) -> dict[str, set[tuple]]:
    """Extract per-label EDB predicates from a database snapshot.

    ``database`` is any ``name -> Relation`` mapping — in the session
    pipeline it is an immutable
    :class:`~repro.data.snapshot.DatabaseSnapshot`, which makes the
    extraction repeatable without locking and lets the session memoize
    the EDB *on the snapshot* (one extraction per version, shared by
    every Datalog query pinned to it).

    Binary ``(src, trg)`` relations become predicates; inverse relations
    (``-label``) and the ``facts`` triple table are skipped — the
    translation references forward labels only, swapping argument order
    for inverse steps.  Relations with other schemas (C7 seed relations
    etc.) are also skipped: the Datalog front-end only understands the
    graph-shaped part of the database.
    """
    edb: dict[str, set[tuple]] = {}
    for name, relation in database.items():
        if name.startswith(INVERSE_PREFIX) or name == "facts":
            continue
        if tuple(sorted(relation.columns)) != tuple(sorted((SRC, TRG))):
            continue
        edb[name] = relation.to_pairs(SRC, TRG)
    return edb
