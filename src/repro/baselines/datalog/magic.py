"""Constant specialization of Datalog programs (magic-set style).

BigDatalog applies magic-set / demand-transformation optimisations: when a
query binds an argument of a recursive predicate to a constant, the
recursion can be restricted to the facts reachable from that constant —
*provided the binding travels in the direction the recursion is written*.

The translation of UCRPQs (:mod:`.translate`) produces left-linear
recursions (``tc(x,y) :- tc(x,z), edge(z,y)``) whose first argument is
preserved through the recursive call.  For such predicates:

* a constant bound to the **first** argument can be specialised into the
  rules (the equivalent of pushing a source filter into the closure),
* a constant bound to the **second** argument cannot — Datalog engines
  would need to *reverse* the recursion first, which (as the paper notes)
  is precisely the mu-RA rewriting they lack.  The program is then left
  unchanged and the full closure is materialised before filtering.

This asymmetry is the point of the baseline: it mirrors what the paper's
experiments observe on classes C2 vs C3.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Atom, Const, Program, Rule, Var


@dataclass
class SpecializationReport:
    """What the transformer managed (or declined) to specialise."""

    specialized: list[str]
    skipped: list[str]


class MagicSetSpecializer:
    """Specialise recursive predicates on constants bound by the goal rules."""

    def specialize(self, program: Program) -> tuple[Program, SpecializationReport]:
        """Return a new program with bound-argument specialisation applied."""
        report = SpecializationReport(specialized=[], skipped=[])
        new_program = Program(goal=program.goal)
        replacement_rules: list[Rule] = []
        handled: set[tuple[str, int, object]] = set()
        goal_rules = program.rules_for(program.goal)
        rewritten_goals: list[Rule] = []
        for goal_rule in goal_rules:
            new_body = []
            for atom in goal_rule.body:
                rewritten = atom
                if program.is_recursive(atom.predicate):
                    rewritten = self._try_specialize(program, atom, handled,
                                                     replacement_rules, report)
                new_body.append(rewritten)
            rewritten_goals.append(Rule(goal_rule.head, tuple(new_body)))
        for rule in program.rules:
            if rule.head.predicate == program.goal:
                continue
            new_program.add(rule)
        for rule in replacement_rules:
            new_program.add(rule)
        for rule in rewritten_goals:
            new_program.add(rule)
        return self._prune_unreachable(new_program), report

    @staticmethod
    def _prune_unreachable(program: Program) -> Program:
        """Drop rules whose head predicate the goal no longer depends on.

        After specialisation the original (unspecialised) recursive rules are
        dead code; evaluating them would materialise exactly the closure the
        optimisation was meant to avoid.
        """
        reachable = program.dependencies(program.goal) | {program.goal}
        pruned = Program(goal=program.goal)
        for rule in program.rules:
            if rule.head.predicate in reachable:
                pruned.add(rule)
        return pruned

    # -- Internals ----------------------------------------------------------------

    def _try_specialize(self, program: Program, atom: Atom,
                        handled: set[tuple[str, int, object]],
                        replacement_rules: list[Rule],
                        report: SpecializationReport) -> Atom:
        """Specialise one goal body atom if a constant binds a preserved arg."""
        for position, arg in enumerate(atom.args):
            if not isinstance(arg, Const):
                continue
            if not self._position_preserved(program, atom.predicate, position):
                report.skipped.append(
                    f"{atom.predicate}[{position}]={arg.value!r}")
                continue
            key = (atom.predicate, position, arg.value)
            specialized_name = self._specialized_name(atom.predicate, position,
                                                      arg.value)
            if key not in handled:
                handled.add(key)
                for rule in program.rules_for(atom.predicate):
                    replacement_rules.append(
                        self._specialize_rule(rule, atom.predicate, position,
                                              arg.value, specialized_name))
            report.specialized.append(
                f"{atom.predicate}[{position}]={arg.value!r}")
            # The specialised predicate keeps the original arity (its head
            # carries the constant), so the goal atom only changes name.
            return Atom(specialized_name, atom.args)
        return atom

    @staticmethod
    def _position_preserved(program: Program, predicate: str, position: int) -> bool:
        """True when every recursive rule copies head arg ``position`` from the
        recursive body atom's same position (the binding can be pushed)."""
        for rule in program.rules_for(predicate):
            recursive_atoms = [a for a in rule.body if a.predicate == predicate]
            if not recursive_atoms:
                continue
            head_arg = rule.head.args[position]
            if not isinstance(head_arg, Var):
                return False
            for recursive_atom in recursive_atoms:
                if recursive_atom.args[position] != head_arg:
                    return False
        return True

    @staticmethod
    def _specialize_rule(rule: Rule, predicate: str, position: int, value,
                         specialized_name: str) -> Rule:
        """Rewrite one rule of ``predicate`` for the bound constant."""
        head_arg = rule.head.args[position]
        substitution = {head_arg: Const(value)} if isinstance(head_arg, Var) else {}

        def rewrite_atom(atom: Atom) -> Atom:
            name = specialized_name if atom.predicate == predicate else atom.predicate
            args = tuple(substitution.get(arg, arg) if isinstance(arg, Var) else arg
                         for arg in atom.args)
            return Atom(name, args)

        return Rule(rewrite_atom(rule.head), tuple(rewrite_atom(a) for a in rule.body))

    @staticmethod
    def _specialized_name(predicate: str, position: int, value) -> str:
        token = str(value).replace(" ", "_")[:24]
        return f"{predicate}__b{position}_{token}"
