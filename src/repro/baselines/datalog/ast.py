"""Abstract syntax of Datalog programs.

The BigDatalog baseline evaluates positive Datalog programs: rules of the
form ``head :- body1, ..., bodyn`` where every atom applies a predicate to
variables or constants.  The representation is deliberately minimal — just
what the translation of UCRPQs needs — but it is a genuine Datalog core:
any positive program over binary/ternary predicates can be expressed and
evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import DatalogError


@dataclass(frozen=True)
class Var:
    """A Datalog variable (capitalised by convention in ``str`` output)."""

    name: str

    def __str__(self) -> str:
        return self.name.upper() if self.name else "?"


@dataclass(frozen=True)
class Const:
    """A constant argument."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Argument = Var | Const


@dataclass(frozen=True)
class Atom:
    """A predicate applied to arguments, e.g. ``tc(X, Y)``.

    ``negated`` marks a negative body literal (``not tc(X, Y)``).  The
    semi-naive engine evaluates **positive** programs only and rejects
    negated atoms up front; negation exists in the AST so the parser and
    the static analyzer (:mod:`repro.check`) can check safety and
    stratification of user-written programs before they ever reach an
    engine.
    """

    predicate: str
    args: tuple[Argument, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.predicate:
            raise DatalogError("atom predicates must be non-empty")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> tuple[Var, ...]:
        found: list[Var] = []
        for arg in self.args:
            if isinstance(arg, Var) and arg not in found:
                found.append(arg)
        return tuple(found)

    def __str__(self) -> str:
        rendered = f"{self.predicate}({', '.join(str(a) for a in self.args)})"
        return f"not {rendered}" if self.negated else rendered


@dataclass(frozen=True)
class Rule:
    """``head :- body``.  A rule with an empty body is a fact."""

    head: Atom
    body: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise DatalogError(f"rule heads cannot be negated: {self}")
        head_vars = set(self.head.variables())
        positive_vars = {v for atom in self.positive_body()
                         for v in atom.variables()}
        unsafe = head_vars - positive_vars
        if self.body and unsafe:
            raise DatalogError(
                f"unsafe rule: head variables {sorted(v.name for v in unsafe)} "
                f"do not occur in a positive body atom: {self}"
            )
        floating = {v for atom in self.negative_body()
                    for v in atom.variables()} - positive_vars
        if floating:
            raise DatalogError(
                f"unsafe negation: variables "
                f"{sorted(v.name for v in floating)} occur only under "
                f"negation: {self}"
            )

    @property
    def is_fact(self) -> bool:
        return not self.body

    def positive_body(self) -> tuple[Atom, ...]:
        return tuple(atom for atom in self.body if not atom.negated)

    def negative_body(self) -> tuple[Atom, ...]:
        return tuple(atom for atom in self.body if atom.negated)

    def predicates_used(self) -> frozenset[str]:
        return frozenset(atom.predicate for atom in self.body)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."


@dataclass
class Program:
    """A Datalog program plus the name of its answer (goal) predicate."""

    rules: list[Rule] = field(default_factory=list)
    goal: str = "answer"

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by rules (intensional database)."""
        return frozenset(rule.head.predicate for rule in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates only used in bodies (extensional database)."""
        used = frozenset(p for rule in self.rules for p in rule.predicates_used())
        return used - self.idb_predicates()

    def rules_for(self, predicate: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def is_recursive(self, predicate: str) -> bool:
        """True when ``predicate`` (transitively) depends on itself."""
        return predicate in self._reachable_from(predicate)

    def dependencies(self, predicate: str) -> frozenset[str]:
        """IDB predicates that must be computed before ``predicate``."""
        return self._reachable_from(predicate) & self.idb_predicates()

    def _reachable_from(self, predicate: str) -> frozenset[str]:
        reachable: set[str] = set()
        frontier = [predicate]
        while frontier:
            current = frontier.pop()
            for rule in self.rules_for(current):
                for used in rule.predicates_used():
                    if used not in reachable:
                        reachable.add(used)
                        frontier.append(used)
        return frozenset(reachable)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
