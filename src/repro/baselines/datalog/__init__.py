"""BigDatalog baseline: Datalog AST, semi-naive engine, magic sets, distribution."""

from .ast import Atom, Const, Program, Rule, Var
from .distributed import (BigDatalogEngine, BigDatalogResult,
                          same_generation_program)
from .engine import DatalogStats, SemiNaiveEngine
from .magic import MagicSetSpecializer, SpecializationReport
from .translate import (GOAL_PREDICATE, DatalogTranslator, graph_to_edb,
                        ucrpq_to_datalog)

__all__ = [
    "Atom",
    "BigDatalogEngine",
    "BigDatalogResult",
    "Const",
    "DatalogStats",
    "DatalogTranslator",
    "GOAL_PREDICATE",
    "MagicSetSpecializer",
    "Program",
    "Rule",
    "SemiNaiveEngine",
    "SpecializationReport",
    "Var",
    "graph_to_edb",
    "same_generation_program",
    "ucrpq_to_datalog",
]
