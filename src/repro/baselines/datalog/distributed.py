"""BigDatalog-style distributed Datalog evaluation.

BigDatalog [Shkapsky et al., SIGMOD 2016] runs Datalog on Spark.  Its key
distribution technique (the *GPS* generalized-pivoting analysis) detects
*decomposable* programs — recursions that preserve a pivot argument — and
partitions the data on that argument so every worker evaluates its share of
the recursion locally; non-decomposable programs fall back to a global loop
with one shuffle per iteration.

The baseline implemented here follows the same architecture on the
simulated cluster:

1. UCRPQs are translated to left-linear Datalog (:mod:`.translate`),
2. bound constants are pushed with magic-set style specialisation when the
   recursion direction allows it (:mod:`.magic`),
3. recursive predicates are checked for decomposability (pivot on the first
   argument) and the corresponding communication pattern is recorded,
4. the program is evaluated bottom-up with the semi-naive engine.

What it *cannot* do — merge recursions, reverse them, or push joins through
them — is exactly what separates it from Dist-mu-RA in the experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ...data.graph import LabeledGraph
from ...data.relation import Relation
from ...distributed.cluster import SparkCluster
from ...query.ast import UCRPQ
from ...query.parser import parse_query
from .ast import Program, Var
from .engine import SemiNaiveEngine
from .magic import MagicSetSpecializer, SpecializationReport
from .translate import GOAL_PREDICATE, graph_to_edb, ucrpq_to_datalog


@dataclass
class BigDatalogResult:
    """Result of one BigDatalog query evaluation."""

    relation: Relation
    program: Program
    specialization: SpecializationReport
    decomposable_predicates: list[str] = field(default_factory=list)
    non_decomposable_predicates: list[str] = field(default_factory=list)
    iterations: int = 0
    facts_derived: int = 0
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.relation)


class BigDatalogEngine:
    """The BigDatalog baseline bound to one graph and one simulated cluster."""

    def __init__(self, graph: LabeledGraph, num_workers: int = 4,
                 use_magic: bool = True, max_facts: int | None = None):
        self.graph = graph
        self.cluster = SparkCluster(num_workers=num_workers)
        self.use_magic = use_magic
        self.max_facts = max_facts
        self._edb = graph_to_edb(graph)

    # -- Public API -----------------------------------------------------------

    def run_query(self, query: str | UCRPQ) -> BigDatalogResult:
        """Translate, optimise, distribute and evaluate one UCRPQ."""
        started = time.perf_counter()
        parsed = parse_query(query) if isinstance(query, str) else query
        program = ucrpq_to_datalog(parsed)
        report = SpecializationReport(specialized=[], skipped=[])
        if self.use_magic:
            program, report = MagicSetSpecializer().specialize(program)
        self.cluster.reset_metrics()
        decomposable, non_decomposable = self._analyse_distribution(program)
        engine = SemiNaiveEngine(max_facts=self.max_facts)
        facts = engine.evaluate(program, self._edb)
        self._record_communication(program, facts, engine,
                                   decomposable, non_decomposable)
        columns = tuple(sorted(v.name for v in parsed.head))
        relation = self._goal_relation(parsed, facts, columns)
        elapsed = time.perf_counter() - started
        return BigDatalogResult(
            relation=relation,
            program=program,
            specialization=report,
            decomposable_predicates=decomposable,
            non_decomposable_predicates=non_decomposable,
            iterations=engine.stats.iterations,
            facts_derived=engine.stats.facts_derived,
            elapsed_seconds=elapsed,
        )

    def run_program(self, program: Program,
                    goal_columns: tuple[str, ...]) -> Relation:
        """Evaluate a hand-written Datalog program (used by the C7 workloads)."""
        engine = SemiNaiveEngine(max_facts=self.max_facts)
        facts = engine.evaluate(program, self._edb)
        rows = facts.get(program.goal, set())
        return Relation(goal_columns, rows) if rows else Relation.empty(goal_columns)

    # -- Distribution analysis (GPS-style) -----------------------------------------

    def _analyse_distribution(self, program: Program) -> tuple[list[str], list[str]]:
        return analyse_distribution(program)

    def _record_communication(self, program: Program, facts, engine,
                              decomposable: list[str],
                              non_decomposable: list[str]) -> None:
        """Record the communication pattern the evaluation would have had."""
        metrics = self.cluster.metrics
        metrics.partitioning = "pivot" if decomposable and not non_decomposable \
            else "broadcast"
        iterations = max(1, engine.stats.iterations)
        if non_decomposable:
            # Global loop: the recursive delta is reshuffled at every round.
            metrics.global_iterations += iterations
            for predicate in non_decomposable:
                size = len(facts.get(predicate, ()))
                per_round = max(1, size // iterations)
                for _ in range(iterations):
                    self.cluster.record_shuffle(per_round)
        else:
            metrics.local_iterations += iterations
        # EDB relations used by recursive rules are broadcast to the workers.
        recursive_edb = set()
        for rule in program.rules:
            if any(a.predicate in program.idb_predicates()
                   and program.is_recursive(a.predicate) for a in rule.body):
                recursive_edb |= {a.predicate for a in rule.body
                                  if a.predicate in program.edb_predicates()}
        for predicate in sorted(recursive_edb):
            self.cluster.record_broadcast(len(self._edb.get(predicate, ())))
        self.cluster.record_tasks(self.cluster.num_workers)

    # -- Result shaping ---------------------------------------------------------------

    @staticmethod
    def _goal_relation(parsed: UCRPQ, facts, columns: tuple[str, ...]) -> Relation:
        return goal_relation(parsed, facts, columns)

    def __repr__(self) -> str:
        return (f"BigDatalogEngine(graph={self.graph.name!r}, "
                f"workers={self.cluster.num_workers}, magic={self.use_magic})")


def analyse_distribution(program: Program) -> tuple[list[str], list[str]]:
    """Classify recursive predicates as decomposable or not (GPS-style).

    A predicate is decomposable when every recursive rule preserves its
    first argument from the recursive body atom — the generalized-pivot
    condition that lets BigDatalog co-partition the recursion.  Shared by
    :class:`BigDatalogEngine` and the session's Datalog front-end.
    """
    decomposable: list[str] = []
    non_decomposable: list[str] = []
    for predicate in sorted(program.idb_predicates()):
        if not program.is_recursive(predicate):
            continue
        if _has_pivot(program, predicate):
            decomposable.append(predicate)
        else:
            non_decomposable.append(predicate)
    return decomposable, non_decomposable


def _has_pivot(program: Program, predicate: str) -> bool:
    for rule in program.rules_for(predicate):
        recursive_atoms = [a for a in rule.body if a.predicate == predicate]
        if not recursive_atoms:
            continue
        head_arg = rule.head.args[0]
        if not isinstance(head_arg, Var):
            return False
        for atom in recursive_atoms:
            if atom.args[0] != head_arg:
                return False
    return True


def goal_relation(parsed: UCRPQ, facts, columns: tuple[str, ...]) -> Relation:
    """Shape the derived goal facts into a relation over the head columns."""
    rows = facts.get(GOAL_PREDICATE, set())
    head_names = [v.name for v in parsed.head]
    order = [head_names.index(column) for column in columns]
    if not rows:
        return Relation.empty(columns)
    reordered = {tuple(row[i] for i in order) for row in rows}
    return Relation(columns, reordered)


def same_generation_program(predicate_label: str | None = None) -> tuple[Program, tuple[str, str]]:
    """The classic same-generation Datalog program used by the C7 workloads.

    ``sg(x, y) :- e(z, x), e(z, y).``
    ``sg(x, y) :- e(z, x), sg(z, w), e(w, y).``

    When ``predicate_label`` is given the program runs over that label's
    edges; otherwise the caller must provide an ``edge`` EDB predicate.
    Returns the program and the output column names.
    """
    edge = predicate_label if predicate_label is not None else "edge"
    from .ast import Atom, Rule
    x, y, z, w = Var("x"), Var("y"), Var("z"), Var("w")
    program = Program(goal="sg")
    program.add(Rule(Atom("sg", (x, y)),
                     (Atom(edge, (z, x)), Atom(edge, (z, y)))))
    program.add(Rule(Atom("sg", (x, y)),
                     (Atom(edge, (z, x)), Atom("sg", (z, w)), Atom(edge, (w, y)))))
    return program, ("src", "trg")
