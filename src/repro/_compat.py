"""Deprecation plumbing for the compatibility facades.

The facades (:meth:`DistMuRA.query`, :meth:`QueryService.query`) warn
**exactly once per call site**: a tight replay loop produces one warning,
while two distinct call sites each get their own.  This is stricter than
the default ``warnings`` registry (which pytest and many applications
override with ``always``), so the once-per-site contract holds no matter
how the ambient warning filters are configured.
"""

from __future__ import annotations

import sys
import warnings

from .check.sanitizer import ordered_lock

_WARNED_SITES: set[tuple[str, int, str]] = set()
_LOCK = ordered_lock("compat.warn-once")


def warn_once(message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` once per (caller site, message).

    ``stacklevel`` follows the :func:`warnings.warn` convention: 3 means
    "attribute the warning to the caller of my caller", the right value
    when a deprecated public method calls this helper directly.
    """
    frame = sys._getframe(stacklevel - 1)
    site = (frame.f_code.co_filename, frame.f_lineno, message)
    with _LOCK:
        if site in _WARNED_SITES:
            return
        _WARNED_SITES.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_registry() -> None:
    """Forget every recorded call site (test isolation helper)."""
    with _LOCK:
        _WARNED_SITES.clear()
