"""Shared fixtures: the paper's running example graph and small databases."""

from __future__ import annotations

import pytest

from repro.data import LabeledGraph, Relation
from repro.datasets import erdos_renyi_graph, random_tree


@pytest.fixture
def paper_edges() -> Relation:
    """The edge relation E of Fig. 2 of the paper."""
    pairs = [
        (1, 2), (1, 4), (2, 3), (4, 5), (3, 5), (5, 6),
        (10, 11), (10, 13), (11, 13), (11, 5), (13, 12), (12, 12),
        (12, 10), (13, 11),
    ]
    return Relation.from_pairs(pairs, columns=("src", "trg"))


@pytest.fixture
def paper_start_edges() -> Relation:
    """The start-edge relation S of Fig. 2 (edges leaving the roots 1 and 10)."""
    pairs = [(1, 2), (1, 4), (10, 11), (10, 13)]
    return Relation.from_pairs(pairs, columns=("src", "trg"))


@pytest.fixture
def paper_database(paper_edges, paper_start_edges) -> dict:
    return {"E": paper_edges, "S": paper_start_edges}


@pytest.fixture(scope="session")
def seeded_random_graph() -> LabeledGraph:
    """Session-scoped seeded Erdos-Renyi graph shared by the differential
    tests (building it once keeps the plan x executor matrix fast)."""
    return erdos_renyi_graph(36, num_edges=85, seed=20260728,
                             name="differential-er")


@pytest.fixture(scope="session")
def seeded_two_label_graph() -> LabeledGraph:
    """Session-scoped two-label random graph for concatenation queries."""
    return erdos_renyi_graph(30, num_edges=110, seed=4207,
                             labels=("a", "b"), name="differential-ab")


@pytest.fixture(scope="session")
def seeded_tree_graph() -> LabeledGraph:
    """Session-scoped random tree (child-to-parent edges, label ``edge``)."""
    return random_tree(25, seed=97, name="differential-tree")


@pytest.fixture
def small_labeled_graph() -> LabeledGraph:
    """A small knowledge graph exercising several predicates."""
    graph = LabeledGraph(name="small-kg")
    graph.add_edges([
        ("alice", "knows", "bob"),
        ("bob", "knows", "carol"),
        ("carol", "knows", "dave"),
        ("alice", "livesIn", "grenoble"),
        ("bob", "livesIn", "lyon"),
        ("grenoble", "isLocatedIn", "france"),
        ("lyon", "isLocatedIn", "france"),
        ("france", "isLocatedIn", "europe"),
        ("alice", "worksAt", "inria"),
        ("inria", "isLocatedIn", "grenoble"),
    ])
    return graph
