"""Tests of the benchmark harness and its reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench import (BIG_DATALOG, DIST_MU_RA, GRAPHX, MeasuredRun,
                         comparison_table, run_bigdatalog, run_distmura,
                         run_graphx, series_table, speedup_summary)
from repro.workloads import mu_ra_query, same_generation_term, ucrpq_query


@pytest.fixture
def closure_query():
    return ucrpq_query("TC", "?x,?y <- ?x knows+ ?y")


class TestSystemAdapters:
    def test_all_three_systems_agree(self, small_labeled_graph, closure_query):
        distmura = run_distmura(small_labeled_graph, closure_query)
        bigdatalog = run_bigdatalog(small_labeled_graph, closure_query)
        graphx = run_graphx(small_labeled_graph, closure_query)
        assert distmura.succeeded and bigdatalog.succeeded and graphx.succeeded
        assert distmura.rows == bigdatalog.rows == graphx.rows
        assert {distmura.system, bigdatalog.system, graphx.system} == {
            DIST_MU_RA, BIG_DATALOG, GRAPHX}

    def test_distmura_metrics_are_attached(self, small_labeled_graph, closure_query):
        run = run_distmura(small_labeled_graph, closure_query)
        assert "shuffles" in run.metrics
        assert run.seconds > 0

    def test_mu_ra_term_query_runs_on_distmura(self, small_labeled_graph):
        query = mu_ra_query("SG", same_generation_term("knows"))
        run = run_distmura(small_labeled_graph, query)
        assert run.succeeded

    def test_graphx_reports_c7_as_unsupported(self, small_labeled_graph):
        query = mu_ra_query("SG", same_generation_term("knows"))
        run = run_graphx(small_labeled_graph, query)
        assert run.status == "unsupported"
        assert run.cell() == "n/a"

    def test_bigdatalog_without_program_for_c7_is_unsupported(self, small_labeled_graph):
        query = mu_ra_query("SG", same_generation_term("knows"))
        run = run_bigdatalog(small_labeled_graph, query)
        assert run.status == "unsupported"

    def test_budget_failure_is_reported_not_raised(self, small_labeled_graph,
                                                   closure_query):
        run = run_bigdatalog(small_labeled_graph, closure_query, max_facts=2)
        assert run.status == "failed"
        assert run.cell() == "X"
        graphx = run_graphx(small_labeled_graph, closure_query, max_messages=1)
        assert graphx.status == "failed"


class TestReporting:
    def _runs(self):
        return [
            MeasuredRun("A", "Q1", "g", 1.0, 10),
            MeasuredRun("B", "Q1", "g", 2.0, 10),
            MeasuredRun("A", "Q2", "g", 0.5, 5),
            MeasuredRun("B", "Q2", "g", 0.1, 5, status="failed"),
        ]

    def test_comparison_table_contains_all_cells(self):
        table = comparison_table(self._runs(), "demo")
        assert "Q1" in table and "Q2" in table
        assert "1.000s" in table and "X" in table

    def test_speedup_summary_counts_wins_and_failures(self):
        summary = speedup_summary(self._runs(), baseline_system="B",
                                  contender_system="A")
        assert "A is at least as fast: 1" in summary
        assert "B failures: 1" in summary

    def test_series_table(self):
        table = series_table([(1, {"s1": 0.5, "s2": 1.5}),
                              (2, {"s1": 0.7})], "sweep", x_label="n")
        assert "sweep" in table and "0.500" in table and "-" in table
