"""Latency-percentile rendering and the shared table formatter."""

from __future__ import annotations

import pytest

from repro.bench import comparison_table, latency_table, render_table
from repro.bench.harness import MeasuredRun
from repro.service import percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([4.2], 0.99) == 4.2

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_p95_of_uniform_range(self):
        values = list(range(101))  # 0..100
        assert percentile(values, 0.95) == pytest.approx(95.0)
        assert percentile(values, 0.99) == pytest.approx(99.0)


class TestLatencyTable:
    def test_columns_and_values(self):
        table = latency_table(
            [("caches off", [0.1, 0.2, 0.3, 0.4]),
             ("caches on", [0.01, 0.01])],
            title="Service latency", row_label="mode")
        lines = table.splitlines()
        assert lines[0] == "Service latency"
        header = lines[2]
        for column in ("mode", "count", "mean_s", "p50_s", "p95_s", "p99_s",
                       "max_s"):
            assert column in header
        off_row = next(line for line in lines if line.startswith("caches off"))
        assert "4" in off_row and "0.2500" in off_row and "0.4000" in off_row

    def test_custom_percentiles(self):
        table = latency_table([("s", [1.0, 2.0])], title="T",
                              percentiles=(0.5,), unit="ms")
        assert "p50_ms" in table and "p95" not in table

    def test_empty_samples_render_dashes(self):
        table = latency_table([("quiet", [])], title="T")
        row = next(line for line in table.splitlines()
                   if line.startswith("quiet"))
        assert "-" in row and " 0 " in f" {row} "


class TestSharedRenderer:
    def test_render_table_alignment(self):
        text = render_table("Title", ["a", "bb"], [["x", "y"], ["zz", "w"]])
        lines = text.splitlines()
        assert lines[1] == "=" * len("Title")
        assert all(len(line) == len(lines[2]) for line in lines[2:])

    def test_comparison_table_unchanged_shape(self):
        runs = [
            MeasuredRun(system="A", query_id="Q1", dataset="d",
                        seconds=0.5, rows=10),
            MeasuredRun(system="B", query_id="Q1", dataset="d",
                        seconds=1.0, rows=10, status="failed"),
        ]
        table = comparison_table(runs, "Fig")
        assert "0.500s" in table and "X" in table
        assert table.splitlines()[2].startswith("query_id")
