"""Tests of the workload definitions (Yago, Uniprot, closures, non-regular)."""

from __future__ import annotations

import pytest

from repro.algebra import evaluate
from repro.baselines.datalog import SemiNaiveEngine, graph_to_edb
from repro.datasets import random_tree, uniprot_graph, yago_like_graph
from repro.workloads import (anbn_datalog, anbn_term,
                             concatenated_closure_queries,
                             filtered_same_generation_term,
                             joined_same_generation_term, nonregular_queries,
                             same_generation_datalog, same_generation_term,
                             uniprot_queries, yago_queries)


class TestYagoWorkload:
    def test_all_25_queries_parse_and_classify(self):
        queries = yago_queries()
        assert len(queries) == 25
        for query in queries:
            assert query.is_ucrpq
            parsed = query.parsed()
            assert parsed.contains_closure()

    def test_queries_use_only_generated_predicates(self):
        graph = yago_like_graph(scale=60, seed=0)
        labels = set(graph.labels)
        for query in yago_queries():
            missing = query.parsed().labels() - labels
            assert not missing, f"{query.qid} references missing labels {missing}"

    def test_subset_selection(self):
        queries = yago_queries(subset=("Q1", "Q5"))
        assert [q.qid for q in queries] == ["Q1", "Q5"]

    def test_classes_match_paper_for_key_queries(self):
        by_id = {q.qid: q for q in yago_queries()}
        assert by_id["Q1"].classes == frozenset({"C1"})
        assert "C2" in by_id["Q5"].classes
        assert "C6" in by_id["Q8"].classes
        assert "C3" in by_id["Q12"].classes
        assert "C4" in by_id["Q15"].classes


class TestUniprotWorkload:
    def test_all_25_queries_instantiate(self):
        graph = uniprot_graph(num_edges=500, seed=1)
        queries = uniprot_queries(graph)
        assert len(queries) == 25
        labels = set(graph.labels)
        for query in queries:
            assert not query.parsed().labels() - labels

    def test_constants_are_substituted(self):
        graph = uniprot_graph(num_edges=500, seed=1)
        queries = {q.qid: q for q in uniprot_queries(graph)}
        assert "{protein}" not in queries["Q28"].text
        assert "protein_" in queries["Q28"].text


class TestClosureWorkload:
    def test_depths_two_to_ten(self):
        queries = concatenated_closure_queries(max_depth=10)
        assert [q.qid for q in queries] == [f"CC{i}" for i in range(2, 11)]
        assert all("C6" in q.classes for q in queries)

    def test_depth_below_two_rejected(self):
        from repro.workloads import concatenated_closure_query
        with pytest.raises(ValueError):
            concatenated_closure_query(1)


class TestNonRegularWorkload:
    def test_same_generation_matches_datalog(self):
        graph = random_tree(60, seed=2)
        mu_result = evaluate(same_generation_term("edge"), graph.relations())
        program = same_generation_datalog("edge")
        facts = SemiNaiveEngine().evaluate(program, graph_to_edb(graph))
        assert mu_result.to_pairs("src", "trg") == facts["answer"]

    def test_anbn_matches_datalog(self):
        from repro.datasets import preferential_attachment_graph, relabel_for_anbn
        graph = relabel_for_anbn(preferential_attachment_graph(50, seed=3), seed=3)
        mu_result = evaluate(anbn_term("a", "b"), graph.relations())
        facts = SemiNaiveEngine().evaluate(anbn_datalog("a", "b"),
                                           graph_to_edb(graph))
        assert mu_result.to_pairs("src", "trg") == facts["answer"]

    def test_anbn_on_known_chain(self):
        # a a b b: the anbn pairs are (0,4) [a^2 b^2] and (1,3) [a^1 b^1].
        from repro.data import LabeledGraph
        graph = LabeledGraph()
        graph.add_edges([(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "b", 4)])
        result = evaluate(anbn_term("a", "b"), graph.relations())
        assert result.to_pairs("src", "trg") == {(1, 3), (0, 4)}

    def test_same_generation_contains_siblings(self):
        from repro.data import LabeledGraph
        graph = LabeledGraph()
        # children 1 and 2 share parent 0; grandchildren 3 (of 1) and 4 (of 2).
        graph.add_edges([(1, "edge", 0), (2, "edge", 0),
                         (3, "edge", 1), (4, "edge", 2)])
        pairs = evaluate(same_generation_term("edge"),
                         graph.relations()).to_pairs("src", "trg")
        assert (1, 2) in pairs
        assert (3, 4) in pairs
        assert (1, 3) not in pairs

    def test_filtered_sg_restricts_to_one_predicate(self):
        from repro.data import LabeledGraph
        graph = LabeledGraph()
        graph.add_edges([(1, "p", 0), (2, "p", 0), (5, "q", 0), (6, "q", 0)])
        filtered = evaluate(filtered_same_generation_term("p"), graph.relations())
        pairs = filtered.to_pairs("src", "trg")
        assert (1, 2) in pairs
        assert (5, 6) not in pairs

    def test_joined_sg_covers_selected_predicates(self):
        from repro.data import LabeledGraph
        graph = LabeledGraph()
        graph.add_edges([(1, "p", 0), (2, "p", 0), (5, "q", 0), (6, "q", 0),
                         (7, "r", 0), (8, "r", 0)])
        joined = evaluate(joined_same_generation_term(["p", "q"]),
                          graph.relations())
        predicates = joined.column_values("pred")
        assert predicates == {"p", "q"}

    def test_nonregular_query_list(self):
        queries = nonregular_queries("edge", filtered_predicate="p",
                                     joined_predicates=["p", "q"])
        assert [q.qid for q in queries] == ["anbn", "SG", "FilteredSG", "JoinedSG"]
        assert all(q.classes == frozenset({"C7"}) for q in queries)
