"""Streamed results: chunked batches, cursors, snapshot-pinned pages."""

from __future__ import annotations

import pytest

from repro.net import HttpServer, ServerThread, ServiceClient, Tenant, \
    TenantRegistry
from repro.net.client import ResponseError

KNOWS = "?x,?y <- ?x knows+ ?y"


def test_stream_matches_buffered_query(client):
    buffered = client.query(KNOWS)
    events = list(client.stream_query(KNOWS, batch_size=2))
    final = events[-1]
    assert final["done"] is True
    assert final["row_count"] == buffered["row_count"]
    assert final["snapshot_version"] == buffered["snapshot_version"]
    assert final["next_cursor"] is None
    rows = [row for event in events[:-1] for row in event["batch"]]
    assert rows == buffered["rows"]
    assert all(len(event["batch"]) <= 2 for event in events[:-1])
    assert [event["index"] for event in events[:-1]] == list(
        range(len(events) - 1))


def test_limit_returns_cursor_and_resume_continues(client):
    buffered = client.query(KNOWS)
    events = list(client.stream_query(KNOWS, batch_size=2, limit=3))
    final = events[-1]
    first_rows = [row for event in events[:-1] for row in event["batch"]]
    assert len(first_rows) == 3
    assert final["next_cursor"]
    resumed = list(client.stream_query(cursor=final["next_cursor"]))
    rest = [row for event in resumed[:-1] for row in event["batch"]]
    assert first_rows + rest == buffered["rows"]
    assert resumed[-1]["next_cursor"] is None
    # A cursor is not single-use: the same page can be re-read.
    again = list(client.stream_query(cursor=final["next_cursor"]))
    assert [row for event in again[:-1] for row in event["batch"]] == rest


def test_cursor_pages_stay_pinned_across_mutations(client):
    before = client.query(KNOWS)
    events = list(client.stream_query(KNOWS, limit=3, batch_size=3))
    cursor = events[-1]["next_cursor"]
    client.add_edges("default", "knows", [("dave", "erin")])
    after = client.query(KNOWS)
    assert after["row_count"] > before["row_count"]
    # The continuation still reads the stream's pinned snapshot.
    resumed = list(client.stream_query(cursor=cursor))
    assert resumed[-1]["row_count"] == before["row_count"]
    assert resumed[-1]["snapshot_version"] == before["snapshot_version"]
    rows = ([row for event in events[:-1] for row in event["batch"]]
            + [row for event in resumed[:-1] for row in event["batch"]])
    assert rows == before["rows"]


def test_stream_rows_follows_cursors_exhaustively(client):
    buffered = client.query(KNOWS)
    rows = list(client.stream_rows(KNOWS, batch_size=2, page_limit=4))
    assert rows == buffered["rows"]


def test_unknown_cursor_is_410(client):
    with pytest.raises(ResponseError) as excinfo:
        list(client.stream_query(cursor="bogus"))
    assert excinfo.value.status == 410


def test_stream_validation(client):
    with pytest.raises(ResponseError) as excinfo:
        list(client.stream_query(KNOWS, batch_size=0))
    assert excinfo.value.status == 400
    with pytest.raises(ResponseError) as excinfo:
        list(client.stream_query(KNOWS, limit=-1))
    assert excinfo.value.status == 400
    with pytest.raises(ResponseError) as excinfo:
        list(client.stream_query(KNOWS, graph="nope"))
    assert excinfo.value.status == 404


def test_datalog_frontend_cannot_stream(client):
    response = client._send("POST", "/v1/query/stream",
                            {"query": KNOWS, "frontend": "datalog"})
    assert response.status == 400
    response.read()


def test_cursor_is_scoped_to_its_tenant(net_service):
    registry = TenantRegistry([
        Tenant(name="a", token="token-a"),
        Tenant(name="b", token="token-b"),
    ])
    running = ServerThread(
        HttpServer(net_service, tenants=registry)).start()
    try:
        with ServiceClient(port=running.port, token="token-a") as alice, \
                ServiceClient(port=running.port, token="token-b") as bob:
            events = list(alice.stream_query(KNOWS, limit=2))
            cursor = events[-1]["next_cursor"]
            assert cursor
            with pytest.raises(ResponseError) as excinfo:
                list(bob.stream_query(cursor=cursor))
            assert excinfo.value.status == 403
            # The owner can still use it.
            assert list(alice.stream_query(cursor=cursor))
    finally:
        running.stop()


def test_abandoned_stream_leaves_the_client_usable(client):
    events = client.stream_query(KNOWS, batch_size=1)
    next(events)  # read one event, then abandon the generator
    events.close()
    assert client.query(KNOWS)["status"] == "ok"
