"""Acceptance: concurrent OS-process clients vs single-threaded replay.

N worker *processes* drive :class:`ServiceClient` against one server —
interleaving queries, streamed queries and mutations on two graphs.
Every response carries the ``snapshot_version`` it was served against;
afterwards the test replays all recorded mutations single-threaded (in
version order) on a fresh in-process :class:`Session` and checks every
response's rows against the reconstructed state of its exact snapshot.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.data import LabeledGraph
from repro.net import HttpServer, ServerThread
from repro.net.client import ServiceClient
from repro.service import QueryService
from repro.session import Session

KNOWS = "?x,?y <- ?x knows+ ?y"
CITES = "?x,?y <- ?x cites+ ?y"
WORKERS = 4


def build_default_graph() -> LabeledGraph:
    graph = LabeledGraph(name="default")
    graph.add_edges([
        ("alice", "knows", "bob"),
        ("bob", "knows", "carol"),
        ("carol", "knows", "dave"),
        ("alice", "likes", "carol"),
    ])
    return graph


def build_citations_graph() -> LabeledGraph:
    graph = LabeledGraph(name="citations")
    graph.add_edges([
        ("p1", "cites", "p2"),
        ("p2", "cites", "p3"),
        ("p1", "cites", "p3"),
    ])
    return graph


def _query_record(graph: str, query: str, response: dict) -> dict:
    return {"kind": "query", "graph": graph, "query": query,
            "version": response["snapshot_version"],
            "rows": response["rows"]}


def _mutation_record(graph: str, label: str, response: dict, *,
                     add=None, remove=None) -> dict:
    return {"kind": "mutation", "graph": graph, "label": label,
            "version": response["snapshot_version"],
            "add": add or [], "remove": remove or []}


def run_worker(args: tuple) -> list[dict]:
    """One OS process: a deterministic op mix over both graphs."""
    port, worker_id = args
    records = []
    with ServiceClient("127.0.0.1", port, timeout=60.0) as client:
        me = f"w{worker_id}"
        records.append(_query_record("default", KNOWS, client.query(KNOWS)))
        added = [(f"{me}-src", f"{me}-dst"), ("dave", f"{me}-friend")]
        response = client.add_edges("default", "knows", added)
        records.append(_mutation_record("default", "knows", response,
                                        add=added))
        records.append(_query_record("default", KNOWS, client.query(KNOWS)))
        cite = [(f"{me}-paper", "p1")]
        response = client.add_edges("citations", "cites", cite)
        records.append(_mutation_record("citations", "cites", response,
                                        add=cite))
        records.append(_query_record(
            "citations", CITES, client.query(CITES, graph="citations")))
        # A streamed read with cursor pagination: same differential
        # contract, rows + snapshot_version from the final event.
        events = list(client.stream_query(KNOWS, batch_size=4))
        final = events[-1]
        rows = [row for event in events[:-1] for row in event["batch"]]
        records.append({"kind": "query", "graph": "default",
                        "query": KNOWS,
                        "version": final["snapshot_version"],
                        "rows": rows})
        removed = [(f"{me}-src", f"{me}-dst")]
        response = client.remove_edges("default", "knows", removed)
        records.append(_mutation_record("default", "knows", response,
                                        remove=removed))
        records.append(_query_record("default", KNOWS, client.query(KNOWS)))
    return records


def replay_and_check(build_graph, records: list[dict]) -> int:
    """Replay mutations in version order; check every query's rows."""
    mutations = sorted((r for r in records if r["kind"] == "mutation"),
                       key=lambda r: r["version"])
    versions = [m["version"] for m in mutations]
    assert len(set(versions)) == len(versions), \
        "commits must have unique versions"
    queries = [r for r in records if r["kind"] == "query"]
    assert queries, "expected query records"
    session = Session(build_graph(), num_workers=2)
    needed = sorted({(q["query"], q["version"]) for q in queries},
                    key=lambda pair: pair[1])
    expected: dict[tuple, list] = {}
    index = 0
    for query_text, version in needed:
        while index < len(mutations) \
                and mutations[index]["version"] <= version:
            mutation = mutations[index]
            if mutation["add"]:
                session.add_edges(mutation["label"],
                                  [tuple(p) for p in mutation["add"]])
            if mutation["remove"]:
                session.remove_edges(mutation["label"],
                                     [tuple(p) for p in mutation["remove"]])
            assert session.snapshot().version == mutation["version"], \
                "replay must walk the exact committed version sequence"
            index += 1
        relation = session.ucrpq(query_text).collect().relation
        expected[(query_text, version)] = [
            list(row) for row in sorted(relation.rows, key=repr)]
    for record in queries:
        assert record["rows"] == expected[(record["query"],
                                           record["version"])], \
            f"divergence at version {record['version']}"
    return len(queries)


def test_concurrent_multiprocess_clients_match_serial_replay():
    session = Session(build_default_graph(), num_workers=2)
    session.attach("citations", build_citations_graph())
    service = QueryService(session, max_in_flight=4, own_engine=True)
    running = ServerThread(HttpServer(service, own_service=True)).start()
    try:
        context = multiprocessing.get_context("spawn")
        with context.Pool(WORKERS) as pool:
            batches = pool.map(run_worker,
                               [(running.port, i) for i in range(WORKERS)])
    finally:
        running.stop()
    records = [record for batch in batches for record in batch]
    by_graph: dict[str, list[dict]] = {"default": [], "citations": []}
    for record in records:
        by_graph[record["graph"]].append(record)
    checked = replay_and_check(build_default_graph, by_graph["default"])
    checked += replay_and_check(build_citations_graph,
                                by_graph["citations"])
    # 4 versioned reads per worker on default, 1 on citations.
    assert checked == WORKERS * 5
