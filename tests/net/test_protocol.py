"""HTTP/1.1 wire layer: request parsing, framing, chunked responses."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ProtocolError
from repro.net.protocol import (ChunkedResponseWriter, read_request,
                                render_response)


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class FakeWriter:
    """Collects everything a ChunkedResponseWriter writes."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data += chunk

    async def drain(self) -> None:
        pass


class TestReadRequest:
    def test_parses_request_line_headers_and_query_string(self):
        request = parse(b"GET /v1/explain?query=abc&graph=g HTTP/1.1\r\n"
                        b"Host: localhost\r\nX-Thing: 42\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/explain"
        assert request.query == {"query": "abc", "graph": "g"}
        assert request.header("x-thing") == "42"
        assert request.header("X-THING") == "42"
        assert request.keep_alive is True

    def test_connection_close_and_http10_defaults(self):
        closing = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert closing.keep_alive is False
        old = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert old.keep_alive is False
        old_keep = parse(b"GET / HTTP/1.0\r\n"
                         b"Connection: keep-alive\r\n\r\n")
        assert old_keep.keep_alive is True

    def test_reads_json_body_by_content_length(self):
        body = json.dumps({"query": "q"}).encode()
        request = parse(b"POST /v1/query HTTP/1.1\r\n"
                        b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert request.json() == {"query": "q"}

    def test_bad_json_and_non_object_bodies_are_protocol_errors(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope")
        with pytest.raises(ProtocolError):
            request.json()
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]")
        with pytest.raises(ProtocolError):
            request.json()

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_post_without_content_length_is_411(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST /v1/query HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 411

    def test_oversized_body_is_413(self):
        raw = (b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
               + b"x" * 100)
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw, max_body_bytes=10)
        assert excinfo.value.status == 413

    def test_chunked_request_body_is_501(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 501

    def test_unsupported_version_is_501(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert excinfo.value.status == 501

    def test_truncated_head_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\nHost: x")

    def test_oversized_head_is_431(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 100_000
                  + b"\r\n\r\n")
        assert excinfo.value.status == 431


class TestRenderResponse:
    def test_frames_status_content_length_and_connection(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok": true}'

    def test_close_and_extra_headers(self):
        raw = render_response(503, b"{}", keep_alive=False,
                              headers=(("Retry-After", "1"),))
        assert b"Connection: close" in raw
        assert b"Retry-After: 1" in raw


class TestChunkedResponseWriter:
    def test_writes_head_chunks_and_terminator(self):
        writer = FakeWriter()

        async def go():
            chunked = ChunkedResponseWriter(writer)
            await chunked.start()
            await chunked.write_json({"batch": [1, 2]})
            await chunked.write(b"")  # skipped: would terminate the stream
            await chunked.write_json({"done": True})
            await chunked.finish()
            return chunked

        chunked = asyncio.run(go())
        raw = bytes(writer.data)
        head, _, rest = raw.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        assert chunked.finished and chunked.bytes_written == len(raw)
        # Decode the chunk framing by hand and recover the ndjson lines.
        decoded = bytearray()
        while rest:
            size_hex, _, rest = rest.partition(b"\r\n")
            size = int(size_hex, 16)
            if size == 0:
                break
            decoded += rest[:size]
            rest = rest[size + 2:]
        lines = [json.loads(line)
                 for line in decoded.decode().splitlines() if line]
        assert lines == [{"batch": [1, 2]}, {"done": True}]
