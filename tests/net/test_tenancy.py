"""Tenancy: token auth, graph mapping, rate limits and in-flight quotas."""

from __future__ import annotations

import pytest

from repro.errors import (AuthenticationError, AuthorizationError,
                          QuotaExceededError)
from repro.net.tenancy import (ALL_GRAPHS, Tenant, TenantRegistry,
                               TokenBucket)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTenant:
    def test_resolve_graph_defaults_and_allows(self):
        tenant = Tenant(name="t", graphs=frozenset({"a", "b"}),
                        default_graph="a")
        assert tenant.resolve_graph(None) == "a"
        assert tenant.resolve_graph("b") == "b"

    def test_resolve_graph_denies_unmapped(self):
        tenant = Tenant(name="t", graphs=frozenset({"a"}))
        with pytest.raises(AuthorizationError):
            tenant.resolve_graph("b")

    def test_wildcard_allows_everything(self):
        tenant = Tenant(name="t", graphs=frozenset({ALL_GRAPHS}))
        assert tenant.allows_graph("anything")


class TestTokenBucket:
    def test_burst_then_wait_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0


class TestRegistry:
    def make(self, clock=None, **overrides):
        tenant = Tenant(name="acme", token="sekrit", **overrides)
        registry = TenantRegistry([tenant],
                                  clock=clock or FakeClock())
        return registry, tenant

    def test_authenticate_bearer_and_bare(self):
        registry, tenant = self.make()
        assert registry.authenticate("Bearer sekrit") is tenant
        assert registry.authenticate("bearer sekrit") is tenant
        assert registry.authenticate("sekrit") is tenant

    def test_authenticate_failures(self):
        registry, _ = self.make()
        with pytest.raises(AuthenticationError):
            registry.authenticate(None)
        with pytest.raises(AuthenticationError):
            registry.authenticate("Bearer nope")
        with pytest.raises(AuthenticationError):
            registry.authenticate("Basic sekrit")

    def test_duplicate_token_rejected(self):
        registry, _ = self.make()
        with pytest.raises(ValueError):
            registry.register(Tenant(name="other", token="sekrit"))

    def test_in_flight_quota(self):
        registry, tenant = self.make(max_in_flight=2)
        first = registry.admit(tenant)
        second = registry.admit(tenant)
        with pytest.raises(QuotaExceededError) as excinfo:
            registry.admit(tenant)
        assert excinfo.value.retry_after is not None
        assert registry.in_flight(tenant) == 2
        first.release()
        first.release()  # idempotent
        assert registry.in_flight(tenant) == 1
        with registry.admit(tenant):
            assert registry.in_flight(tenant) == 2
        second.release()
        assert registry.in_flight(tenant) == 0

    def test_rate_limit_releases_slot_and_reports_wait(self):
        clock = FakeClock()
        registry, tenant = self.make(clock=clock, rate_limit=1.0, burst=1.0,
                                     max_in_flight=10)
        registry.admit(tenant).release()
        with pytest.raises(QuotaExceededError) as excinfo:
            registry.admit(tenant)
        assert excinfo.value.retry_after == pytest.approx(1.0)
        # The rejected request must not leak an in-flight slot.
        assert registry.in_flight(tenant) == 0
        clock.advance(1.0)
        registry.admit(tenant).release()

    def test_unregistered_tenant_is_unlimited(self):
        registry, _ = self.make()
        ghost = Tenant(name="ghost")
        for _ in range(10):
            registry.admit(ghost).release()

    def test_from_config(self):
        registry = TenantRegistry.from_config([
            {"name": "a", "token": "ta", "graphs": ["g1"],
             "default_graph": "g1", "rate_limit": 5, "max_in_flight": 2},
            {"name": "b", "token": "tb"},
        ])
        a = registry.authenticate("ta")
        assert a.graphs == frozenset({"g1"})
        assert a.rate_limit == 5 and a.max_in_flight == 2
        b = registry.authenticate("tb")
        assert b.allows_graph("anything")
