"""Graceful shutdown: drain semantics, 503s, and forced close.

The tests add a ``/slow`` test route so "in flight" is under the
test's control rather than depending on query runtimes.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.net import HttpServer, ServerThread, ServiceClient
from repro.net.server import CLOSED, DRAINING, Response

KNOWS = "?x,?y <- ?x knows+ ?y"


def make_server(net_service, *, sleep_seconds: float,
                drain_grace: float) -> ServerThread:
    server = HttpServer(net_service, drain_grace=drain_grace)

    async def slow(request, params, context) -> Response:
        await asyncio.sleep(sleep_seconds)
        return Response(200, {"slept": sleep_seconds})

    server.router.add("GET", "/slow", slow)
    return ServerThread(server).start()


def test_in_flight_request_completes_during_drain(net_service):
    running = make_server(net_service, sleep_seconds=0.5, drain_grace=10.0)
    outcome: dict = {}

    def slow_call():
        with ServiceClient(port=running.port) as client:
            outcome.update(client._json(client._send("GET", "/slow")))

    worker = threading.Thread(target=slow_call)
    worker.start()
    time.sleep(0.15)  # let the slow request reach the handler
    started = time.perf_counter()
    running.signal()  # SIGTERM equivalent: start the drain
    worker.join(timeout=10)
    elapsed = time.perf_counter() - started
    assert outcome == {"slept": 0.5}, "in-flight request must complete"
    assert elapsed < 5.0
    running.stop()
    assert running.server.state == CLOSED


def test_draining_server_answers_503_and_closes_listener(net_service):
    running = make_server(net_service, sleep_seconds=1.0, drain_grace=10.0)
    holder = ServiceClient(port=running.port)
    results: list = []

    def slow_call():
        results.append(holder._json(holder._send("GET", "/slow")))

    worker = threading.Thread(target=slow_call)
    # A second, kept-alive connection established while still serving:
    bystander = ServiceClient(port=running.port)
    assert bystander.health()["server_state"] == "serving"
    worker.start()
    time.sleep(0.15)
    running.signal()
    time.sleep(0.1)
    assert running.server.state == DRAINING
    # Queued-but-unstarted work on the open connection: clean 503.
    response = bystander._send("GET", "/healthz")
    assert response.status == 503
    body = response.read()
    assert b"draining" in body
    assert response.getheader("Connection") == "close"
    # The listener is closed: fresh connections are refused.
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", running.port), timeout=1.0)
    worker.join(timeout=10)
    assert results == [{"slept": 1.0}]
    bystander.close()
    holder.close()
    running.stop()


def test_second_signal_forces_immediate_close(net_service):
    running = make_server(net_service, sleep_seconds=30.0, drain_grace=30.0)
    failure: list = []

    def doomed_call():
        try:
            with ServiceClient(port=running.port, timeout=10.0) as client:
                client._json(client._send("GET", "/slow"))
        except Exception as error:
            failure.append(error)

    worker = threading.Thread(target=doomed_call)
    worker.start()
    time.sleep(0.15)
    started = time.perf_counter()
    running.signal()   # drain (would wait 30s for the sleeper)
    time.sleep(0.1)
    running.signal()   # force
    worker.join(timeout=10)
    elapsed = time.perf_counter() - started
    assert elapsed < 5.0, "forced close must not wait out the grace"
    assert failure, "the aborted in-flight request must surface an error"
    running.stop()
    assert running.server.state == CLOSED


def test_drain_grace_bounds_the_wait(net_service):
    running = make_server(net_service, sleep_seconds=30.0, drain_grace=0.3)
    with ServiceClient(port=running.port, timeout=10.0) as client:
        worker = threading.Thread(
            target=lambda: _swallow(client, "/slow"))
        worker.start()
        time.sleep(0.15)
        started = time.perf_counter()
        running.signal()
        worker.join(timeout=10)
        assert time.perf_counter() - started < 5.0
    running.stop()
    assert running.server.state == CLOSED


def _swallow(client: ServiceClient, path: str) -> None:
    try:
        client._json(client._send("GET", path))
    except Exception:
        pass


def test_shutdown_is_idempotent(net_service):
    running = ServerThread(HttpServer(net_service)).start()
    running.stop()
    running.stop()
    assert running.server.state == CLOSED


def test_streaming_response_completes_during_drain(client, server):
    events = client.stream_query(KNOWS, batch_size=1)
    first = next(events)
    server.signal()
    remaining = list(events)
    assert remaining[-1]["done"] is True
    rows = first["batch"] + [row for event in remaining[:-1]
                             for row in event["batch"]]
    assert len(rows) == remaining[-1]["row_count"]
