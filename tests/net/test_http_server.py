"""The HTTP endpoints end to end against a live in-process server."""

from __future__ import annotations

import pytest

from repro.net import (HttpServer, ServerThread, ServiceClient, Tenant,
                       TenantRegistry)
from repro.net.client import ResponseError
from repro.service import UNBOUNDED, QueryService
from repro.session import Session

KNOWS = "?x,?y <- ?x knows+ ?y"
CITES = "?x,?y <- ?x cites+ ?y"


def expected_rows(graph, query, strategy=None):
    """The single-threaded in-process answer, in wire row order."""
    session = Session(graph, num_workers=2)
    relation = session.ucrpq(query).collect(strategy).relation
    return [list(row) for row in sorted(relation.rows, key=repr)]


class TestQueryEndpoint:
    def test_query_matches_in_process_result(self, client,
                                             small_labeled_graph):
        response = client.query(KNOWS)
        assert response["status"] == "ok"
        assert response["graph"] == "default"
        assert response["rows"] == expected_rows(small_labeled_graph, KNOWS)
        assert response["row_count"] == len(response["rows"])
        assert response["columns"] == ["x", "y"]
        assert response["snapshot_version"] == 0
        assert response["plan"]["digest"]
        assert response["cache"] == {"plan_hit": False, "result_hit": False}
        assert response["timing"]["latency_seconds"] >= 0

    def test_repeat_query_hits_the_caches(self, client):
        client.query(KNOWS)
        repeat = client.query(KNOWS)
        assert repeat["cache"] == {"plan_hit": True, "result_hit": True}

    def test_named_graph_and_strategy(self, client):
        response = client.query(CITES, graph="citations",
                                strategy="pgld")
        assert response["graph"] == "citations"
        assert response["row_count"] == 6

    def test_datalog_frontend(self, client, small_labeled_graph):
        response = client.query(KNOWS, frontend="datalog")
        assert response["rows"] == expected_rows(small_labeled_graph, KNOWS)
        # The datalog path bypasses the serving caches.
        assert response["cache"] == {"plan_hit": None, "result_hit": None}

    def test_failed_query_is_400_with_detail(self, client):
        # The service serves it as FAILED; the tier maps it to 400 and
        # forwards the failure detail in the payload.
        with pytest.raises(ResponseError) as excinfo:
            client.query("?x,?y <- ?x nosuchlabel+ ?y")
        assert excinfo.value.status == 400
        assert excinfo.value.payload["status"] == "failed"
        assert "nosuchlabel" in excinfo.value.payload["detail"]

    def test_validation_errors(self, client):
        for body_error in (
                lambda: client.query(""),
                lambda: client.query(KNOWS, frontend="sql"),
                lambda: client.query(KNOWS, timeout=-1),
        ):
            with pytest.raises(ResponseError) as excinfo:
                body_error()
            assert excinfo.value.status == 400

    def test_unknown_graph_is_404(self, client):
        with pytest.raises(ResponseError) as excinfo:
            client.query(KNOWS, graph="nope")
        assert excinfo.value.status == 404

    def test_tiny_deadline_is_504_and_zero_disables_it(self, client):
        with pytest.raises(ResponseError) as excinfo:
            client.query(KNOWS, timeout=1e-9)
        assert excinfo.value.status == 504
        assert client.query(KNOWS, timeout=0)["status"] == "ok"

    def test_client_translates_unbounded_sentinel(self, client):
        assert client.query(KNOWS, timeout=UNBOUNDED)["status"] == "ok"


class TestRoutingAndHeaders:
    def test_unknown_route_is_404(self, client):
        with pytest.raises(ResponseError) as excinfo:
            client._json(client._send("GET", "/nope"))
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_with_allow(self, client):
        response = client._send("POST", "/healthz", {})
        assert response.status == 405
        assert response.getheader("Allow") == "GET"
        response.read()

    def test_trace_id_header_on_every_response(self, client):
        response = client._send("GET", "/healthz")
        assert response.getheader("X-Trace-Id")
        response.read()

    def test_keep_alive_reuses_one_connection(self, client):
        client.query(KNOWS)
        connection = client._connection
        client.query(KNOWS)
        assert client._connection is connection


class TestMutationEndpoint:
    def test_add_then_remove_round_trip(self, client,
                                        small_labeled_graph):
        before = client.query(KNOWS)["row_count"]
        added = client.add_edges("default", "knows", [("dave", "erin")])
        assert added["committed"] is True
        assert added["snapshot_version"] == 1
        assert "knows" in added["touched"]
        after = client.query(KNOWS)
        assert after["row_count"] > before
        assert after["snapshot_version"] == 1
        removed = client.remove_edges("default", "knows",
                                      [("dave", "erin")])
        assert removed["snapshot_version"] == 2
        assert client.query(KNOWS)["rows"] == expected_rows(
            small_labeled_graph, KNOWS)

    def test_mixed_mutation_is_one_commit(self, client):
        response = client.mutate("default", "knows",
                                 add=[("x1", "x2")],
                                 remove=[("alice", "bob")])
        assert response["snapshot_version"] == 1

    def test_mutation_validation(self, client):
        with pytest.raises(ResponseError) as excinfo:
            client.mutate("default", "knows")
        assert excinfo.value.status == 400
        with pytest.raises(ResponseError) as excinfo:
            client.mutate("default", "", add=[("a", "b")])
        assert excinfo.value.status == 400
        with pytest.raises(ResponseError) as excinfo:
            client._json(client._send(
                "POST", "/v1/graphs/default/edges",
                {"label": "knows", "add": [["only-one"]]}))
        assert excinfo.value.status == 400

    def test_mutation_on_unknown_graph_is_404(self, client):
        with pytest.raises(ResponseError) as excinfo:
            client.add_edges("nope", "knows", [("a", "b")])
        assert excinfo.value.status == 404


class TestOpsEndpoints:
    def test_healthz_shape(self, client):
        health = client.health()
        assert health["http_status"] == 200
        assert health["status"] == "ok"
        assert health["server_state"] == "serving"
        assert health["uptime_seconds"] > 0
        assert health["queue_high_water"] >= 0
        assert health["open_connections"] >= 1

    def test_metrics_exposes_http_and_service_families(self, client):
        client.query(KNOWS)
        text = client.metrics()
        assert "repro_http_requests_total" in text
        assert "repro_http_request_seconds" in text
        assert "repro_http_in_flight" in text
        assert "repro_service_uptime_seconds" in text
        assert "repro_service_queue_high_water" in text
        assert 'route="/v1/query"' in text

    def test_explain_reports_spans_and_cache_outcomes(self, client):
        explain = client.explain(KNOWS)
        assert explain["rows"] > 0
        assert explain["graph"] == "default"
        assert explain["spans"], "expected at least one span tree"
        names = {span["name"] for span in explain["spans"]}
        assert "query" in names
        assert explain["plan_cache_hit"] in (True, False)

    def test_explain_requires_query(self, client):
        with pytest.raises(ResponseError) as excinfo:
            client.explain("")
        assert excinfo.value.status == 400


class TestTenancyOverHttp:
    @pytest.fixture
    def secured(self, net_service):
        registry = TenantRegistry([
            Tenant(name="acme", token="acme-token",
                   graphs=frozenset({"default"}), rate_limit=1000.0),
            Tenant(name="cite", token="cite-token",
                   graphs=frozenset({"citations"}),
                   default_graph="citations"),
            Tenant(name="throttled", token="throttled-token",
                   rate_limit=1.0, burst=1.0),
        ])
        running = ServerThread(
            HttpServer(net_service, tenants=registry)).start()
        yield running
        running.stop()

    def test_missing_and_unknown_tokens_are_401(self, secured):
        with ServiceClient(port=secured.port) as anonymous:
            with pytest.raises(ResponseError) as excinfo:
                anonymous.query(KNOWS)
            assert excinfo.value.status == 401
        with ServiceClient(port=secured.port, token="wrong") as bad:
            with pytest.raises(ResponseError) as excinfo:
                bad.query(KNOWS)
            assert excinfo.value.status == 401

    def test_graph_mapping_enforced(self, secured):
        with ServiceClient(port=secured.port, token="acme-token") as acme:
            assert acme.query(KNOWS)["graph"] == "default"
            with pytest.raises(ResponseError) as excinfo:
                acme.query(CITES, graph="citations")
            assert excinfo.value.status == 403

    def test_default_graph_follows_the_tenant(self, secured):
        with ServiceClient(port=secured.port, token="cite-token") as cite:
            assert cite.query(CITES)["graph"] == "citations"

    def test_ops_endpoints_stay_open(self, secured):
        with ServiceClient(port=secured.port) as anonymous:
            assert anonymous.health()["http_status"] == 200
            assert "repro_http_requests_total" in anonymous.metrics()

    def test_rate_limit_answers_429_with_retry_after(self, secured):
        with ServiceClient(port=secured.port,
                           token="throttled-token") as throttled:
            throttled.query(KNOWS)
            with pytest.raises(ResponseError) as excinfo:
                throttled.query(KNOWS)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            assert excinfo.value.payload["retry_after_seconds"] > 0

    def test_rate_limited_requests_count_in_metrics(self, secured):
        with ServiceClient(port=secured.port,
                           token="throttled-token") as throttled:
            throttled.query(KNOWS)
            with pytest.raises(ResponseError):
                throttled.query(KNOWS)
            text = throttled.metrics()
        assert "repro_http_rate_limited_total" in text


def test_service_owns_nothing_by_default(net_service):
    """Closing the tier must not close a service it does not own."""
    running = ServerThread(HttpServer(net_service)).start()
    running.stop()
    assert net_service.health()["status"] == "ok"


def test_server_owns_service_when_asked(small_labeled_graph):
    service = QueryService(Session(small_labeled_graph), own_engine=True)
    running = ServerThread(
        HttpServer(service, own_service=True)).start()
    with ServiceClient(port=running.port) as client:
        assert client.query(KNOWS)["status"] == "ok"
    running.stop()
    assert service.health()["status"] == "closed"
