"""Routing: method + path-template dispatch, 404/405 semantics."""

from __future__ import annotations

import pytest

from repro.net.router import MethodNotAllowed, RouteNotFound, Router


async def _handler(request, params, context):  # pragma: no cover - target
    return


@pytest.fixture
def router() -> Router:
    router = Router()
    router.add("POST", "/v1/query", _handler)
    router.add("POST", "/v1/graphs/{graph}/edges", _handler)
    router.add("GET", "/healthz", _handler)
    return router


def test_static_route_resolves(router):
    route, params = router.resolve("POST", "/v1/query")
    assert route.handler is _handler
    assert params == {}


def test_template_route_extracts_params(router):
    route, params = router.resolve("POST", "/v1/graphs/yago/edges")
    assert params == {"graph": "yago"}


def test_unknown_path_is_404(router):
    with pytest.raises(RouteNotFound) as excinfo:
        router.resolve("GET", "/nope")
    assert excinfo.value.status == 404


def test_wrong_method_is_405_with_allowed(router):
    with pytest.raises(MethodNotAllowed) as excinfo:
        router.resolve("GET", "/v1/query")
    assert excinfo.value.status == 405
    assert excinfo.value.allowed == ("POST",)


def test_template_does_not_match_extra_segments(router):
    with pytest.raises(RouteNotFound):
        router.resolve("POST", "/v1/graphs/yago/edges/extra")
