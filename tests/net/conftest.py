"""Shared fixtures for the serving-tier tests: a live server per test."""

from __future__ import annotations

import pytest

from repro.data import LabeledGraph
from repro.net import HttpServer, ServerThread, ServiceClient
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import QueryService
from repro.session import Session


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate the process-global metrics registry per test."""
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def make_citations_graph() -> LabeledGraph:
    graph = LabeledGraph(name="citations")
    graph.add_edges([
        ("p1", "cites", "p2"),
        ("p2", "cites", "p3"),
        ("p3", "cites", "p4"),
        ("p1", "cites", "p3"),
    ])
    return graph


@pytest.fixture
def net_session(small_labeled_graph) -> Session:
    session = Session(small_labeled_graph, num_workers=2)
    session.attach("citations", make_citations_graph())
    return session


@pytest.fixture
def net_service(net_session) -> QueryService:
    with QueryService(net_session, max_in_flight=4,
                      own_engine=True) as service:
        yield service


@pytest.fixture
def server(net_service) -> ServerThread:
    running = ServerThread(HttpServer(net_service)).start()
    yield running
    running.stop()


@pytest.fixture
def client(server) -> ServiceClient:
    with ServiceClient("127.0.0.1", server.port, timeout=30.0) as client:
        yield client
