"""End-to-end tests: parse a UCRPQ, translate it to mu-RA, evaluate it."""

from __future__ import annotations

import pytest

from repro.algebra import LEFT_TO_RIGHT, RIGHT_TO_LEFT, evaluate
from repro.query import (classify_query, output_columns, parse_query,
                         translate_query)


def run_query(text: str, graph, direction: str = LEFT_TO_RIGHT):
    """Parse, translate and evaluate a query over a LabeledGraph."""
    query = parse_query(text)
    term = translate_query(query, direction=direction)
    return evaluate(term, graph.relations())


class TestTranslationOnSmallGraph:
    def test_single_label_step(self, small_labeled_graph):
        result = run_query("?x,?y <- ?x knows ?y", small_labeled_graph)
        assert result.to_pairs("x", "y") == {
            ("alice", "bob"), ("bob", "carol"), ("carol", "dave")}

    def test_transitive_closure(self, small_labeled_graph):
        result = run_query("?x,?y <- ?x knows+ ?y", small_labeled_graph)
        pairs = result.to_pairs("x", "y")
        assert ("alice", "dave") in pairs
        assert ("alice", "bob") in pairs
        assert ("dave", "alice") not in pairs

    def test_closure_directions_agree(self, small_labeled_graph):
        left = run_query("?x,?y <- ?x knows+ ?y", small_labeled_graph,
                         direction=LEFT_TO_RIGHT)
        right = run_query("?x,?y <- ?x knows+ ?y", small_labeled_graph,
                          direction=RIGHT_TO_LEFT)
        assert left == right

    def test_constant_object_filter(self, small_labeled_graph):
        result = run_query("?x <- ?x isLocatedIn+ europe", small_labeled_graph)
        assert result.column_values("x") == {"grenoble", "lyon", "france", "inria"}

    def test_constant_subject_filter(self, small_labeled_graph):
        result = run_query("?x <- grenoble isLocatedIn+ ?x", small_labeled_graph)
        assert result.column_values("x") == {"france", "europe"}

    def test_concatenation_before_closure(self, small_labeled_graph):
        result = run_query("?x <- ?x livesIn/isLocatedIn+ europe",
                           small_labeled_graph)
        assert result.column_values("x") == {"alice", "bob"}

    def test_inverse_step(self, small_labeled_graph):
        result = run_query("?x,?y <- ?x -knows ?y", small_labeled_graph)
        assert ("bob", "alice") in result.to_pairs("x", "y")

    def test_alternation(self, small_labeled_graph):
        result = run_query("?x,?y <- ?x knows|livesIn ?y", small_labeled_graph)
        pairs = result.to_pairs("x", "y")
        assert ("alice", "bob") in pairs
        assert ("alice", "grenoble") in pairs

    def test_conjunction_joins_on_shared_variable(self, small_labeled_graph):
        result = run_query(
            "?x,?c <- ?x knows+ ?y, ?y livesIn ?c", small_labeled_graph)
        pairs = result.to_pairs("x", "c")
        assert ("alice", "lyon") in pairs        # alice knows+ bob, bob lives in lyon
        assert ("alice", "grenoble") not in pairs  # nobody alice knows lives in grenoble

    def test_head_projection_drops_intermediate_variables(self, small_labeled_graph):
        result = run_query(
            "?x <- ?x knows ?y, ?y livesIn ?c", small_labeled_graph)
        assert result.columns == ("x",)

    def test_same_variable_both_ends(self, small_labeled_graph):
        result = run_query(
            "?x <- ?x (knows/-knows)+ ?x", small_labeled_graph)
        # Every node with an outgoing knows edge loops back to itself.
        assert result.column_values("x") == {"alice", "bob", "carol"}

    def test_swapped_variable_names(self, small_labeled_graph):
        # The head variables reverse the roles of source and target.
        result = run_query("?y,?x <- ?x knows ?y", small_labeled_graph)
        assert result.to_pairs("x", "y") == {
            ("alice", "bob"), ("bob", "carol"), ("carol", "dave")}

    def test_union_rules(self, small_labeled_graph):
        result = run_query("?x <- ?x livesIn grenoble ; ?x livesIn lyon",
                           small_labeled_graph)
        assert result.column_values("x") == {"alice", "bob"}

    def test_output_columns_helper(self):
        query = parse_query("?b,?a <- ?a knows ?b")
        assert output_columns(query) == ("a", "b")


class TestClassification:
    @pytest.mark.parametrize("text,expected", [
        ("?x,?y <- ?x a+ ?y", {"C1"}),
        ("?x <- ?x a+ C", {"C2"}),
        ("?x <- C a+ ?x", {"C3"}),
        ("?x,?y <- ?x a+/b ?y", {"C4"}),
        ("?x,?y <- ?x b/a+ ?y", {"C5"}),
        ("?x,?y <- ?x a+/b+ ?y", {"C6"}),
    ])
    def test_paper_examples(self, text, expected):
        assert set(classify_query(parse_query(text))) == expected

    def test_q3_is_c2_c5_c6(self):
        query = parse_query("?x <- ?x isMarriedTo/livesIn/IsL+/dw+ Argentina")
        classes = classify_query(query)
        assert "C2" in classes
        assert "C5" in classes
        assert "C6" in classes

    def test_combined_filter_and_concatenation(self):
        query = parse_query("?x <- C a/b+ ?x")
        classes = classify_query(query)
        assert "C3" in classes
        assert "C5" in classes

    def test_non_recursive_query_has_no_class(self):
        assert classify_query(parse_query("?x,?y <- ?x a/b ?y")) == frozenset()
