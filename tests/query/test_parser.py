"""Tests of the UCRPQ parser against the syntax used in the paper's figures."""

from __future__ import annotations

import pytest

from repro.errors import QueryParseError
from repro.query import (Alternation, Concat, Constant, Label, Plus, Variable,
                         parse_path, parse_query)


class TestPathExpressions:
    def test_single_label(self):
        assert parse_path("hasChild") == Label("hasChild")

    def test_inverse_label(self):
        assert parse_path("-actedIn") == Label("actedIn", inverse=True)

    def test_closure(self):
        assert parse_path("hasChild+") == Plus(Label("hasChild"))

    def test_concatenation(self):
        expr = parse_path("isMarriedTo/livesIn")
        assert expr == Concat((Label("isMarriedTo"), Label("livesIn")))

    def test_alternation(self):
        expr = parse_path("IsL|dw")
        assert expr == Alternation((Label("IsL"), Label("dw")))

    def test_parenthesised_group_closure(self):
        expr = parse_path("(actedIn/-actedIn)+")
        assert expr == Plus(Concat((Label("actedIn"),
                                    Label("actedIn", inverse=True))))

    def test_precedence_of_slash_over_pipe(self):
        expr = parse_path("a/b|c")
        assert isinstance(expr, Alternation)
        assert expr.options[0] == Concat((Label("a"), Label("b")))
        assert expr.options[1] == Label("c")

    def test_namespaced_label(self):
        expr = parse_path("(IsL|dw|rdfs:subClassOf|isConnectedTo)+")
        assert isinstance(expr, Plus)
        assert "rdfs:subClassOf" in expr.labels()

    def test_nested_alternation_in_concat(self):
        expr = parse_path("-type/(IsL+/dw|dw)")
        assert isinstance(expr, Concat)
        assert expr.parts[0] == Label("type", inverse=True)
        assert isinstance(expr.parts[1], Alternation)

    def test_labels_collection(self):
        expr = parse_path("int+/(occ/-occ)+/(hKw/-hKw)+")
        assert expr.labels() == frozenset({"int", "occ", "hKw"})

    def test_empty_path_rejected(self):
        with pytest.raises(QueryParseError):
            parse_path("")

    def test_trailing_junk_rejected(self):
        with pytest.raises(QueryParseError):
            parse_path("a+ )")


class TestQueries:
    def test_q1_shape(self):
        query = parse_query("?x,?y <- ?x hasChild+ ?y")
        assert [v.name for v in query.head] == ["x", "y"]
        assert len(query.rules) == 1
        atom = query.rules[0].atoms[0]
        assert atom.subject == Variable("x")
        assert atom.obj == Variable("y")
        assert atom.path == Plus(Label("hasChild"))

    def test_q3_with_constant_object(self):
        query = parse_query("?x <- ?x isMarriedTo/livesIn/IsL+/dw+ Argentina")
        atom = query.rules[0].atoms[0]
        assert atom.obj == Constant("Argentina")
        assert atom.path.contains_closure()

    def test_constant_subject(self):
        query = parse_query("?x <- Marie_Curie (hWP/-hWP)+ ?x")
        atom = query.rules[0].atoms[0]
        assert atom.subject == Constant("Marie_Curie")

    def test_conjunction_of_atoms(self):
        query = parse_query(
            "?x,?y,?z,?t <- ?x (enc/-enc)+ ?y, ?x int+ ?z, ?x ref ?t")
        assert len(query.rules[0].atoms) == 3
        assert [v.name for v in query.head] == ["x", "y", "z", "t"]

    def test_union_rules(self):
        query = parse_query("?x <- ?x a+ C ; ?x b+ C")
        assert len(query.rules) == 2
        assert query.rules[0].head == query.rules[1].head

    def test_unicode_arrow(self):
        query = parse_query("?x,?y ← ?x isConnectedTo+ ?y")
        assert len(query.rules) == 1

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(QueryParseError):
            parse_query("?x,?z <- ?x a+ ?y")

    def test_missing_arrow_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("?x ?x a+ ?y")

    def test_same_variable_both_ends(self):
        query = parse_query("?x <- ?x (isConnectedTo/-isConnectedTo)+ ?x")
        atom = query.rules[0].atoms[0]
        assert atom.subject == atom.obj == Variable("x")

    def test_roundtrip_str_is_parseable(self):
        text = "?x,?y <- ?x (actedIn/-actedIn)+/hasChild+ ?y"
        query = parse_query(text)
        reparsed = parse_query(str(query).replace(" UNION ", " ; "))
        assert reparsed == query


class TestErrorMessages:
    """Malformed inputs report the source position with a caret snippet."""

    def test_unexpected_character_points_at_it(self):
        source = "?x <- ?x a+ !"
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(source)
        message = str(excinfo.value)
        assert "unexpected character '!'" in message
        assert "at position 12" in message
        assert source in message
        assert excinfo.value.position == 12
        # The caret sits under the offending character.
        snippet_lines = message.splitlines()[-2:]
        assert snippet_lines[0].index("!") == snippet_lines[1].index("^")

    def test_misplaced_operator_points_at_it(self):
        source = "?x <- ?x +knows ?y"
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(source)
        message = str(excinfo.value)
        assert "expected IDENT but found '+'" in message
        assert "at position 9" in message
        snippet_lines = message.splitlines()[-2:]
        assert snippet_lines[1].rstrip().endswith("^")
        assert snippet_lines[1].index("^") == 2 + 9  # two-space indent

    def test_truncated_query_points_past_the_end(self):
        source = "?x <- ?x knows+"
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(source)
        message = str(excinfo.value)
        assert "unexpected end of query" in message
        assert f"at position {len(source)}" in message
        assert source in message

    def test_trailing_input_is_located(self):
        source = "?x <- ?x knows ?y )"
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(source)
        assert "trailing input ')'" in str(excinfo.value)
        assert excinfo.value.position == 18
