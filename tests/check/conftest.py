"""Shared fixtures for the analyzer/sanitizer tests."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.session import Session


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate the process-global metrics registry per test (the
    analysis-count assertions read ``repro_analyze_total`` from it)."""
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture
def kg_session(small_labeled_graph) -> Session:
    return Session(small_labeled_graph, num_workers=2)
