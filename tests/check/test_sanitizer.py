"""Runtime sanitizer regressions: lock ordering, snapshot immutability,
task picklability, and the activation plumbing.

The two seeded regressions the CI sanitizer job exists for — an AB/BA
lock-order inversion and a post-freeze relation mutation — are asserted
here both in strict mode (raising at the violation site) and in
record-only mode.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import pytest

from repro.check import (disable_sanitizer, enable_sanitizer, ordered_lock,
                         ordered_rlock, sanitize, sanitizer_enabled)
from repro.check import sanitizer as sanitizer_module
from repro.check.sanitizer import report_unpicklable_task
from repro.data import LabeledGraph
from repro.data.relation import Relation
from repro.errors import SanitizerError
from repro.session import Session

#: True when the suite itself runs under ``REPRO_SANITIZE=1`` (the CI
#: sanitizer job): the process-wide state is on before any test starts.
_GLOBAL_ACTIVE = sanitizer_module._global_state is not None

only_without_global_sanitizer = pytest.mark.skipif(
    _GLOBAL_ACTIVE,
    reason="asserts sanitizer-off behaviour; the process-wide sanitizer "
           "is active (REPRO_SANITIZE=1)")


@contextmanager
def process_wide_state():
    """The process-wide sanitizer state — reusing the CI activation when
    it is already on, creating (and afterwards removing) one otherwise."""
    state = sanitizer_module._global_state
    created = state is None
    if created:
        state = enable_sanitizer(strict=False)
    try:
        yield state
    finally:
        if created:
            disable_sanitizer()


# -- Lock ordering -------------------------------------------------------------

def test_lock_order_inversion_is_caught_before_it_deadlocks():
    lock_a = ordered_lock("test.a")
    lock_b = ordered_lock("test.b")
    with sanitize():
        with lock_a:
            with lock_b:
                pass  # records the edge a -> b
        with lock_b:
            with pytest.raises(SanitizerError, match="lock-order inversion"):
                lock_a.acquire()


def test_lock_order_inversion_recorded_in_non_strict_mode():
    lock_a = ordered_lock("test.a2")
    lock_b = ordered_lock("test.b2")
    with sanitize(strict=False) as state:
        with lock_a, lock_b:
            pass
        with lock_b, lock_a:
            pass
        assert state.violation_kinds() == ("lock-order",)


def test_lock_order_graph_is_shared_across_threads():
    """Thread 1 teaches the graph a -> b; the main thread's b -> a trips."""
    lock_a = ordered_lock("test.a3")
    lock_b = ordered_lock("test.b3")
    with process_wide_state() as state:
        def ab_order():
            with lock_a, lock_b:
                pass
        worker = threading.Thread(target=ab_order)
        worker.start()
        worker.join()
        # The violation is recorded before a strict state raises, so the
        # assertion holds under both the CI activation and a fresh one.
        try:
            with lock_b, lock_a:
                pass
        except SanitizerError:
            pass
        assert "lock-order" in state.violation_kinds()


def test_consistent_ordering_and_reentrancy_stay_silent():
    lock_a = ordered_lock("test.a4")
    lock_b = ordered_lock("test.b4")
    rlock = ordered_rlock("test.r4")
    with sanitize() as state:
        for _ in range(3):
            with lock_a, lock_b:
                pass
        with rlock, rlock:  # reentrant acquisition is not a self-edge
            pass
        with rlock, lock_a:
            pass
        assert state.violations == []


@only_without_global_sanitizer
def test_ordered_locks_are_plain_locks_when_sanitizer_is_off():
    lock_a = ordered_lock("test.a5")
    lock_b = ordered_lock("test.b5")
    assert not sanitizer_enabled()
    with lock_a, lock_b:
        pass
    with lock_b, lock_a:  # would be an inversion under the sanitizer
        pass
    assert lock_a.acquire(blocking=False)
    assert lock_a.locked()
    lock_a.release()


# -- Snapshot immutability -----------------------------------------------------

def _snapshot_relation() -> Relation:
    graph = LabeledGraph(name="sanitized")
    graph.add_edges([("a", "knows", "b")])
    snapshot = Session(graph).snapshot()
    return snapshot["knows"]


def test_post_freeze_mutation_is_caught():
    relation = _snapshot_relation()
    with sanitize():
        with pytest.raises(SanitizerError, match="frozen into a snapshot"):
            relation._rows = frozenset()
        with pytest.raises(SanitizerError, match="frozen into a snapshot"):
            relation._columns = ("x",)


def test_post_freeze_mutation_recorded_in_non_strict_mode():
    relation = _snapshot_relation()
    original = relation.rows
    with sanitize(strict=False) as state:
        relation._rows = frozenset()
        assert state.violation_kinds() == ("immutability",)
    # Repair for the rest of the suite (the guard records, then assigns).
    object.__setattr__(relation, "_rows", original)


def test_memoized_caches_stay_writable_under_the_guard():
    relation = _snapshot_relation()
    with sanitize() as state:
        relation._index_cache = None
        relation._columnar_cache = None
        assert state.violations == []


def test_unfrozen_relations_are_not_guarded():
    relation = Relation.from_pairs([("a", "b")])
    with sanitize() as state:
        relation._rows = frozenset([("a", "c")])
        assert state.violations == []


@only_without_global_sanitizer
def test_mutation_guard_uninstalls_after_the_context():
    relation = _snapshot_relation()
    original = relation.rows
    with sanitize(strict=False):
        pass
    assert "__setattr__" not in vars(Relation)
    relation._rows = frozenset()  # off again: a plain (unwise) assignment
    object.__setattr__(relation, "_rows", original)


# -- Picklability --------------------------------------------------------------

def test_unpicklable_task_reporting_defaults_to_strict_inline():
    def closure():
        pass
    with sanitize():
        with pytest.raises(SanitizerError, match="not picklable"):
            report_unpicklable_task(closure, 4)


def test_unpicklable_task_report_only_under_ci_style_activation():
    """Process-wide activations tolerate the documented in-process
    fallback: picklability violations record instead of raising."""
    def closure():
        pass
    with process_wide_state() as state:
        report_unpicklable_task(closure, 2)
        assert "picklability" in state.violation_kinds()
        message = dict(state.violations)["picklability"]
        assert "2 task(s)" in message


@only_without_global_sanitizer
def test_unpicklable_task_report_is_a_no_op_when_off():
    report_unpicklable_task(lambda: None, 1)  # must not raise or record


# -- Activation plumbing -------------------------------------------------------

def test_sanitize_is_context_scoped():
    before = sanitizer_enabled()
    with sanitize():
        assert sanitizer_enabled()
    assert sanitizer_enabled() == before


def test_enable_sanitizer_is_idempotent_and_process_wide():
    with process_wide_state() as state:
        assert enable_sanitizer() is state
        seen: list[bool] = []
        worker = threading.Thread(
            target=lambda: seen.append(sanitizer_enabled()))
        worker.start()
        worker.join()
        assert seen == [True]
    assert sanitizer_enabled() == _GLOBAL_ACTIVE
