"""The analyzer's surfaces: ``Query.check``, ``run_once(check=True)``,
``Session.analyze``, the strict service mode, ``POST /v1/analyze`` and
the ``python -m repro.check`` CLI.

Includes the admission-gate micro-benchmark of the acceptance criteria:
the analysis runs once per plan-cache fill and is skipped entirely on
hits, asserted through the ``repro_analyze_total`` counter.
"""

from __future__ import annotations

import json

import pytest

from repro.check.__main__ import main as check_main
from repro.errors import AnalysisError, TranslationError
from repro.net import HttpServer, ServerThread, ServiceClient
from repro.net.client import ResponseError
from repro.obs.metrics import get_registry
from repro.service import FAILED, OK, REJECTED, QueryService
from repro.session import Session

GOOD = "?x,?y <- ?x knows+ ?y"
BAD = "?x,?y <- ?x nope ?y"


def _analysis_count(frontend: str = "ucrpq") -> float:
    return get_registry().counter("repro_analyze_total",
                                  frontend=frontend).value


# -- Query.check ---------------------------------------------------------------

def test_query_check_reports_against_the_pinned_snapshot(kg_session):
    report = kg_session.ucrpq(BAD).check()
    assert not report.ok
    assert [d.code for d in report.diagnostics] == ["Q101"]
    assert "knows" in report.diagnostics[0].hint  # real catalog labels


def test_query_check_is_memoized_on_the_handle(kg_session):
    query = kg_session.ucrpq(GOOD)
    report = query.check()
    assert query.check() is report
    assert _analysis_count() == 1


def test_query_check_classifies_the_recursion(kg_session):
    report = kg_session.ucrpq(GOOD).check()
    assert report.ok
    assert report.recursion.shape == "linear"
    assert report.recursion.strategies == ("Pplw", "Pgld", "centralized")


def test_term_query_check_uses_the_term_frontend(kg_session):
    handle = kg_session.term(kg_session.translate(GOOD))
    report = handle.check()
    assert report.ok and report.subject == "term"
    assert _analysis_count("term") == 1


def test_datalog_query_check(kg_session):
    report = kg_session.datalog(GOOD).check()
    assert report.ok and report.subject == "program"
    assert report.recursion.shape == "linear"
    assert _analysis_count("datalog") == 1


# -- run_once(check=True) ------------------------------------------------------

def test_run_once_check_rejects_with_structured_diagnostics(kg_session):
    with pytest.raises(AnalysisError) as excinfo:
        kg_session.ucrpq(BAD).run_once(check=True)
    assert [d.code for d in excinfo.value.diagnostics] == ["Q101"]
    assert "Q101" in str(excinfo.value)


def test_run_once_without_check_keeps_the_raw_error(kg_session):
    with pytest.raises(TranslationError):
        kg_session.ucrpq(BAD).run_once()
    assert _analysis_count() == 0  # no silent analysis on the default path


def test_run_once_check_passes_clean_queries(kg_session):
    result, _, _ = kg_session.ucrpq(GOOD).run_once(check=True)
    assert ("alice", "dave") in result.relation.rows


def test_run_once_check_tolerates_warnings(kg_session):
    # A cartesian product warns (Q103) but does not reject.
    cartesian = "?x,?z <- ?x knows ?y, ?a livesIn ?z"
    result, _, _ = kg_session.ucrpq(cartesian).run_once(check=True)
    assert len(result.relation) > 0


def test_analysis_runs_once_per_plan_cache_fill(kg_session):
    """The acceptance micro-benchmark: fills analyze, hits skip."""
    kg_session.ucrpq(GOOD).run_once(check=True)
    assert _analysis_count() == 1  # the fill analyzed
    hits_before = kg_session.plan_cache.stats.hits
    kg_session.ucrpq(GOOD).run_once(check=True)
    assert kg_session.plan_cache.stats.hits > hits_before
    assert _analysis_count() == 1  # the hit did not
    # A different strategy is a different plan-cache key: a new fill,
    # and exactly one more analysis.
    kg_session.ucrpq(GOOD).run_once("pgld", check=True)
    assert _analysis_count() == 2


def test_analysis_runs_every_time_without_the_plan_cache(kg_session):
    kg_session.ucrpq(GOOD).run_once(check=True, use_plan_cache=False)
    kg_session.ucrpq(GOOD).run_once(check=True, use_plan_cache=False)
    assert _analysis_count() == 2


# -- Session.analyze -----------------------------------------------------------

def test_session_analyze_dispatches_frontends(kg_session):
    report = kg_session.analyze(GOOD)
    assert report.ok and report.subject == "query"
    report = kg_session.analyze(
        "p(X) :- knows(X,Y).\n?- p(X).", frontend="datalog")
    assert report.ok and report.subject == "program"
    term = kg_session.translate(GOOD)
    report = kg_session.analyze(term, frontend="term")
    assert report.ok and report.subject == "term"


def test_session_analyze_sees_attached_graphs(kg_session, small_labeled_graph):
    from repro.data import LabeledGraph
    other = LabeledGraph(name="other")
    other.add_edges([("x", "cites", "y")])
    kg_session.attach("other", other)
    assert not kg_session.analyze("?a,?b <- ?a cites ?b").ok  # default graph
    scoped = kg_session.graph("other")
    assert scoped.analyze("?a,?b <- ?a cites ?b").ok


# -- Strict service mode -------------------------------------------------------

def test_strict_service_rejects_bad_queries_structurally(kg_session):
    with QueryService(kg_session, max_in_flight=2, strict=True) as service:
        served = service.submit(BAD).result(timeout=30)
        assert served.status == REJECTED
        assert [d["code"] for d in served.diagnostics] == ["Q101"]
        assert served.diagnostics[0]["span"] == [12, 16]
        ok = service.submit(GOOD).result(timeout=30)
        assert ok.status == OK and ok.rows > 0


def test_non_strict_service_fails_without_diagnostics(kg_session):
    with QueryService(kg_session, max_in_flight=2) as service:
        served = service.submit(BAD).result(timeout=30)
        assert served.status == FAILED
        assert served.diagnostics == ()


def test_strict_service_admission_skips_analysis_on_plan_cache_hits(kg_session):
    with QueryService(kg_session, max_in_flight=1, strict=True) as service:
        assert service.submit(GOOD).result(timeout=30).status == OK
        first = _analysis_count()
        assert first >= 1
        assert service.submit(GOOD).result(timeout=30).status == OK
        assert _analysis_count() == first  # served from the cached plan


# -- HTTP: POST /v1/analyze and strict rejection -------------------------------

@pytest.fixture
def strict_server(kg_session):
    with QueryService(kg_session, max_in_flight=2,
                      strict=True) as service:
        running = ServerThread(HttpServer(service)).start()
        yield running
        running.stop()


@pytest.fixture
def client(strict_server) -> ServiceClient:
    with ServiceClient("127.0.0.1", strict_server.port,
                       timeout=30.0) as client:
        yield client


def test_http_analyze_endpoint(client):
    payload = client.analyze(GOOD)
    assert payload["ok"] is True
    assert payload["diagnostics"] == []
    assert payload["recursion"]["shape"] == "linear"
    assert payload["recursion"]["strategies"] == \
        ["Pplw", "Pgld", "centralized"]
    assert payload["frontend"] == "ucrpq"


def test_http_analyze_reports_diagnostics_with_http_200(client):
    # Analysis that *ran* is a success at the HTTP layer; the verdict is
    # in the payload.
    payload = client.analyze(BAD)
    assert payload["ok"] is False
    codes = [d["code"] for d in payload["diagnostics"]]
    assert codes == ["Q101"]
    assert payload["diagnostics"][0]["line"] == 1


def test_http_analyze_datalog_frontend(client):
    payload = client.analyze("p(X) :- knows(X,Y), not p(Y).\n?- p(X).",
                             frontend="datalog")
    assert payload["ok"] is False
    assert [d["code"] for d in payload["diagnostics"]] == ["DL006"]


def test_http_analyze_rejects_bad_frontends(client):
    with pytest.raises(ResponseError) as excinfo:
        client.analyze(GOOD, frontend="sql")
    assert excinfo.value.status == 400


def test_http_strict_query_rejection_carries_diagnostics(client):
    with pytest.raises(ResponseError) as excinfo:
        client.query(BAD)
    assert excinfo.value.status == 400
    payload = excinfo.value.payload
    assert [d["code"] for d in payload["diagnostics"]] == ["Q101"]
    ok = client.query(GOOD)
    assert ok["status"] == "ok" and ok["row_count"] > 0


# -- CLI -----------------------------------------------------------------------

def test_cli_literal_clean(capsys):
    assert check_main(["-q", GOOD]) == 0
    out = capsys.readouterr().out
    assert "no issues" in out or "ok" in out or "linear" in out


def test_cli_literal_parse_error(capsys):
    assert check_main(["-q", "?x <- ?x (knows ?y"]) == 1
    assert "Q001" in capsys.readouterr().out


def test_cli_labels_enable_existence_checks(capsys):
    assert check_main(["-q", BAD, "--labels", "knows,livesIn"]) == 1
    out = capsys.readouterr().out
    assert "Q101" in out and "nope" in out
    # Without a catalog the same query is structurally fine.
    assert check_main(["-q", BAD]) == 0


def test_cli_files_and_json_output(tmp_path, capsys):
    queries = tmp_path / "queries.ucrpq"
    queries.write_text("# a comment\n"
                       f"{GOOD}\n"
                       "?x <- ?x (broken\n")
    program = tmp_path / "program.dl"
    program.write_text("p(X,Y) :- knows(X,Z).\n?- p(X,Y).")
    assert check_main([str(queries), str(program), "--json"]) == 1
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines() if line]
    assert len(lines) == 3  # two query lines + one program
    by_subject = {entry["subject"]: entry for entry in lines}
    assert by_subject[f"{queries}:2"]["ok"] is True
    assert not by_subject[f"{queries}:3"]["ok"]
    program_codes = [d["code"]
                     for d in by_subject[str(program)]["diagnostics"]]
    assert program_codes == ["DL003"]


def test_cli_missing_file_is_a_usage_error(tmp_path, capsys):
    assert check_main([str(tmp_path / "absent.ucrpq")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_requires_something_to_analyze(capsys):
    with pytest.raises(SystemExit) as excinfo:
        check_main([])
    assert excinfo.value.code == 2
