"""The diagnostics corpus: bad programs the analyzer must reject with a
stable code + span, and the repo's own workloads/examples, which must
analyze clean.

The corpus is the compatibility contract of :mod:`repro.check`: codes
are never renumbered and spans are part of the rendered caret snippets,
so both are asserted exactly.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

from repro.algebra.terms import Fixpoint, Join, RelVar, Rename, Union
from repro.baselines.datalog.ast import Atom, Rule, Var
from repro.check import analyze, analyze_program, analyze_query, analyze_term
from repro.data.relation import Relation
from repro.datasets.uniprot import uniprot_graph
from repro.datasets.yago import yago_like_graph
from repro.errors import DatalogError
from repro.session import Session
from repro.workloads import (concatenated_closure_queries, nonregular_queries,
                             yago_queries)
from repro.workloads.uniprot_queries import uniprot_queries

#: A plain-dict catalog: the analyzer accepts any mapping whose values
#: expose ``arity``/``__len__`` (a DatabaseSnapshot does too).
CATALOG = {
    "knows": Relation.from_pairs([("a", "b"), ("b", "c")]),
    "-knows": Relation.from_pairs([("b", "a"), ("c", "b")]),
    "likes": Relation.from_pairs([("a", "c")]),
    "-likes": Relation.from_pairs([("c", "a")]),
    "empty": Relation.from_pairs([]),
    "-empty": Relation.from_pairs([]),
}


def codes_and_spans(report):
    return [(d.code, d.span) for d in report.diagnostics]


# -- UCRPQ bad corpus ----------------------------------------------------------

UCRPQ_BAD = [
    # Parse errors: trailing input, unbalanced parenthesis.
    ("?x,?y <- ?x knows ?y ?z", [("Q001", (21, 22))]),
    ("?x <- ?x (knows ?y", [("Q001", (16, 17))]),
    ('?x,?y <- "alice" knows ?y', [("Q001", (9, 10))]),
    # Unknown labels — plain, under a closure, and in a later union arm.
    ("?x,?y <- ?x nope ?y", [("Q101", (12, 16))]),
    ("?x,?y <- ?x (knows/nope)+ ?y", [("Q101", (19, 23))]),
    ("?x,?y <- ?x knows ?y; ?x nope ?y", [("Q101", (25, 29))]),
    # Empty labels (warning): the span points at the label either way.
    ("?x,?y <- ?x empty ?y", [("Q102", (12, 17))]),
    ("?x,?y <- ?x empty+ ?y", [("Q102", (12, 17))]),
    # Cartesian products: disconnected atom flagged, not the first one.
    ("?x,?z <- ?x knows ?y, ?a likes ?z", [("Q103", (22, 33))]),
    ("?a,?b <- ?a knows ?b, ?c likes ?c", [("Q103", (22, 33))]),
    # Duplicate atom.
    ("?x,?y <- ?x knows ?y, ?x knows ?y", [("Q104", (22, 33))]),
    # Variable-free boolean test (info), in either position.
    ("?x <- alice knows bob, ?x likes ?y", [("Q105", (6, 21))]),
    ("?x,?y <- ?x knows ?y, alice knows bob", [("Q105", (22, 37))]),
]


@pytest.mark.parametrize("query,expected", UCRPQ_BAD,
                         ids=[q for q, _ in UCRPQ_BAD])
def test_ucrpq_bad_corpus(query, expected):
    report = analyze_query(query, database=CATALOG)
    assert codes_and_spans(report) == expected


def test_ucrpq_severities_follow_the_registry():
    severity = {"Q001": "error", "Q101": "error", "Q102": "warning",
                "Q103": "warning", "Q104": "warning", "Q105": "info"}
    for query, expected in UCRPQ_BAD:
        report = analyze_query(query, database=CATALOG)
        for (code, _), diagnostic in zip(expected, report.diagnostics):
            assert diagnostic.severity == severity[code]
    # Only error-level diagnostics flip the verdict.
    assert analyze_query("?x,?y <- ?x empty ?y", database=CATALOG).ok
    assert not analyze_query("?x,?y <- ?x nope ?y", database=CATALOG).ok


def test_ucrpq_render_carets_point_at_the_label():
    report = analyze_query("?x,?y <- ?x nope ?y", database=CATALOG)
    rendered = report.render()
    assert "[Q101]" in rendered
    assert "^^^^" in rendered  # the caret line under 'nope'
    assert "known labels include" in rendered  # the hint survives


# -- Datalog bad corpus --------------------------------------------------------

DATALOG_BAD = [
    # DL001 parse: unbalanced head, and a goal with no rules at all.
    ("p(X :- knows(X,Y).\n?- p(X).", [("DL001", (4, 6))]),
    ("?- nothing(X).", [("DL001", (0, 1))]),
    # DL002 arity conflict between two uses of the same predicate.
    ("p(X) :- knows(X,Y). p(X,Y) :- likes(X,Y).\n?- p(X).",
     [("DL002", (20, 26))]),
    # DL003 unsafe head variable.
    ("p(X,Y) :- knows(X,Z).\n?- p(X,Y).", [("DL003", (4, 5))]),
    # DL004 variable occurring only under negation.
    ("p(X) :- knows(X,Y), not q(Y,Z). q(A,B) :- likes(A,B).\n?- p(X).",
     [("DL004", (28, 29))]),
    # DL006 negation inside the predicate's own recursion.
    ("p(X) :- knows(X,Y), not p(Y).\n?- p(X).", [("DL006", (20, 28))]),
    # DL007 rule unreachable from the goal.
    ("p(X) :- knows(X,Y). dead(X) :- likes(X,Y).\n?- p(X).",
     [("DL007", (20, 27))]),
    # DL008 predicate with neither rules nor a database relation.
    ("p(X) :- nope(X,Y).\n?- p(X).", [("DL008", (8, 17))]),
    # DL009 EDB predicate reading an empty relation.
    ("p(X) :- empty(X,Y).\n?- p(X).", [("DL009", (8, 18))]),
    # DL010 undefined goal (and the rule then becomes unreachable).
    ("p(X) :- knows(X,Y).\n?- q(X).",
     [("DL010", (23, 27)), ("DL007", (0, 4))]),
    # DL011 cartesian product between body atoms.
    ("p(X,Y) :- knows(X,A), likes(B,Y).\n?- p(X,Y).",
     [("DL011", (22, 32))]),
]


@pytest.mark.parametrize("program,expected", DATALOG_BAD,
                         ids=[p.split("\n")[0] for p, _ in DATALOG_BAD])
def test_datalog_bad_corpus(program, expected):
    report = analyze_program(program, database=CATALOG)
    assert codes_and_spans(report) == expected


def test_datalog_negated_head_rejected_at_construction():
    """DL005 has no parser path: the AST refuses negated heads outright."""
    with pytest.raises(DatalogError, match="rule heads cannot be negated"):
        Rule(head=Atom("p", (Var("x"),), negated=True),
             body=(Atom("q", (Var("x"),)),))


def test_datalog_stratification_span_covers_the_negated_literal():
    program = "p(X) :- knows(X,Y), not p(Y).\n?- p(X)."
    report = analyze_program(program, database=CATALOG)
    (start, end), = [d.span for d in report.diagnostics]
    assert program[start:end] == "not p(Y)"


# -- mu-RA term corpus ---------------------------------------------------------

def _nonlinear_closure() -> Fixpoint:
    # mu X. knows | (X |x| X): both fixpoint branches recurse, violating
    # the Fcond linearity requirement of the paper's rewritings.
    return Fixpoint("X", Union(
        RelVar("knows"),
        Join(Rename("trg", "mid", RelVar("X")),
             Rename("src", "mid", RelVar("X")))))


def _linear_closure() -> Fixpoint:
    return Fixpoint("X", Union(
        RelVar("knows"),
        Join(Rename("trg", "mid", RelVar("knows")),
             Rename("src", "mid", RelVar("X")))))


def test_term_unknown_relation_is_t001():
    report = analyze_term(RelVar("nope"), database=CATALOG)
    assert [d.code for d in report.diagnostics] == ["T001"]
    assert not report.ok
    # A free recursion variable is an unknown relation too.
    report = analyze_term(RelVar("X"), database=CATALOG)
    assert [d.code for d in report.diagnostics] == ["T001"]


def test_term_empty_relation_is_t002_warning():
    report = analyze_term(RelVar("empty"), database=CATALOG)
    assert [(d.code, d.severity) for d in report.diagnostics] == \
        [("T002", "warning")]
    assert report.ok  # warnings do not flip the verdict


def test_term_nonlinear_fixpoint_is_t003_with_no_strategies():
    report = analyze_term(_nonlinear_closure(), database=CATALOG)
    assert [d.code for d in report.diagnostics] == ["T003"]
    assert report.recursion.shape == "non-linear"
    assert report.recursion.strategies == ()


def test_term_linear_fixpoint_predicts_the_paper_strategies():
    report = analyze_term(_linear_closure(), database=CATALOG)
    assert report.ok and not report.diagnostics
    assert report.recursion.shape == "linear"
    assert report.recursion.strategies == ("Pplw", "Pgld", "centralized")


def test_term_nonrecursive_shape_is_centralized_only():
    report = analyze_term(RelVar("knows"), database=CATALOG)
    assert report.recursion.shape == "nonrecursive"
    assert report.recursion.strategies == ("centralized",)


def test_analyze_term_rejects_non_terms():
    with pytest.raises(TypeError, match="mu-RA Term"):
        analyze_term("not a term", database=CATALOG)


# -- Clean corpus: the repo's own workloads and examples -----------------------

def _all_workload_queries():
    graph = uniprot_graph(num_edges=400, seed=3)
    return (list(yago_queries()) + list(uniprot_queries(graph))
            + list(concatenated_closure_queries(max_depth=4))
            + list(nonregular_queries()))


def test_workload_queries_analyze_structurally_clean():
    """Every shipped workload query passes the catalog-free checks."""
    queries = _all_workload_queries()
    assert len(queries) >= 40
    for query in queries:
        if query.is_ucrpq:
            report = analyze_query(query.text, database=None)
        else:
            report = analyze_term(query.term, database=None)
        assert report.ok and not report.diagnostics, \
            f"{query.qid}: {report.render()}"
        assert report.recursion is not None


def test_workload_queries_analyze_clean_against_their_graphs():
    """With the real catalogs, no workload query has analyzer errors."""
    yago = Session(yago_like_graph(scale=60, seed=3))
    uniprot_g = uniprot_graph(num_edges=400, seed=3)
    uniprot = Session(uniprot_g)
    for query in yago_queries():
        report = analyze_query(query.text, database=yago.snapshot())
        assert not report.has_errors, f"{query.qid}: {report.render()}"
    for query in uniprot_queries(uniprot_g):
        if query.is_ucrpq:
            report = analyze_query(query.text, database=uniprot.snapshot())
        else:
            report = analyze_term(query.term, database=uniprot.snapshot())
        assert not report.has_errors, f"{query.qid}: {report.render()}"


def _example_query_literals():
    """UCRPQ string literals handed to ucrpq()/datalog()/prepare() in
    the shipped examples, collected by AST walk (f-strings skipped)."""
    examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
    literals = []
    for path in sorted(examples.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("ucrpq", "datalog", "prepare")
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                literals.append((f"{path.name}:{node.lineno}",
                                 node.args[0].value))
    return literals


def test_example_queries_analyze_structurally_clean():
    literals = _example_query_literals()
    assert len(literals) >= 10  # the examples are a real corpus
    for where, text in literals:
        report = analyze_query(text, database=None)
        assert report.ok and not report.diagnostics, \
            f"{where}: {report.render()}"


def test_analyze_dispatches_on_frontend():
    report = analyze("?x,?y <- ?x knows+ ?y", database=CATALOG,
                     frontend="ucrpq")
    assert report.subject == "query" and report.ok
    report = analyze("p(X) :- knows(X,Y).\n?- p(X).", database=CATALOG,
                     frontend="datalog")
    assert report.subject == "program" and report.ok
    report = analyze(_linear_closure(), database=CATALOG, frontend="term")
    assert report.subject == "term" and report.ok
    with pytest.raises(ValueError, match="frontend"):
        analyze("?x <- ?x knows ?y", frontend="sql")
