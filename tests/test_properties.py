"""Property-based tests (hypothesis) of the core invariants.

These cover the algebraic laws the whole system relies on:

* Proposition 1/2 — semi-naive and naive fixpoint evaluation agree,
* Proposition 3 — fixpoint splitting: any split of the constant part gives
  the same result,
* stable-column partitioning produces pairwise disjoint local fixpoints,
* closure direction (left-to-right vs right-to-left) does not change the
  result,
* every plan produced by the rewriter is equivalent to the original,
* the distributed plans agree with the centralized evaluator,
* the relational operators satisfy their set-algebra laws.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra import (Literal, RelVar, Union, closure, closure_from_seed,
                           evaluate, naive_fixpoint, schemas_of_database,
                           stable_columns)
from repro.data import Relation
from repro.distributed import (PGLD, PPLW_POSTGRES, PPLW_SPARK, SparkCluster,
                               make_plan)

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def edge_relations(draw, max_nodes: int = 8, max_edges: int = 16) -> Relation:
    """Small random binary relations over a bounded node domain."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)),
        min_size=1, max_size=max_edges))
    return Relation.from_pairs(pairs, columns=("src", "trg"))


@st.composite
def edge_and_seed(draw):
    edges = draw(edge_relations())
    pairs = sorted(edges.to_pairs("src", "trg"))
    seed_size = draw(st.integers(min_value=1, max_value=len(pairs)))
    seed = Relation.from_pairs(pairs[:seed_size], columns=("src", "trg"))
    return edges, seed


class TestFixpointLaws:
    @SETTINGS
    @given(edges=edge_relations())
    def test_semi_naive_equals_naive(self, edges):
        term = closure(RelVar("E"))
        database = {"E": edges}
        assert evaluate(term, database) == naive_fixpoint(term, database)

    @SETTINGS
    @given(edges=edge_relations())
    def test_closure_directions_agree(self, edges):
        database = {"E": edges}
        left = closure(RelVar("E"), direction="left-to-right")
        right = closure(RelVar("E"), direction="right-to-left")
        assert evaluate(left, database) == evaluate(right, database)

    @SETTINGS
    @given(data=edge_and_seed(), parts=st.integers(min_value=2, max_value=5))
    def test_fixpoint_splitting(self, data, parts):
        """Proposition 3: mu(R1 U R2 U phi) = mu(R1 U phi) U mu(R2 U phi)."""
        edges, seed = data
        database = {"E": edges}
        whole = evaluate(closure_from_seed(Literal(seed, "S"), RelVar("E")),
                         database)
        combined = Relation.empty(("src", "trg"))
        for chunk in seed.split_round_robin(parts):
            if not chunk:
                continue
            partial = evaluate(
                closure_from_seed(Literal(chunk, "Si"), RelVar("E")), database)
            combined = combined.union(partial)
        assert combined == whole

    @SETTINGS
    @given(data=edge_and_seed(), parts=st.integers(min_value=2, max_value=4))
    def test_stable_column_partitions_are_disjoint(self, data, parts):
        edges, seed = data
        database = {"E": edges}
        term = closure_from_seed(Literal(seed, "S"), RelVar("E"))
        stable = stable_columns(term, schemas_of_database(database))
        assert "src" in stable
        locals_ = []
        for chunk in seed.split_by_columns(("src",), parts):
            if not chunk:
                continue
            locals_.append(evaluate(
                closure_from_seed(Literal(chunk, "Si"), RelVar("E")), database))
        for i, first in enumerate(locals_):
            for second in locals_[i + 1:]:
                assert not (first.rows & second.rows)

    @SETTINGS
    @given(edges=edge_relations(), workers=st.integers(min_value=1, max_value=6))
    def test_distributed_plans_agree_with_centralized(self, edges, workers):
        database = {"E": edges}
        term = closure(RelVar("E"))
        reference = evaluate(term, database)
        for strategy in (PGLD, PPLW_SPARK, PPLW_POSTGRES):
            cluster = SparkCluster(num_workers=workers)
            assert make_plan(strategy, cluster, database).execute(term) == reference


class TestRelationAlgebraLaws:
    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_union_is_commutative_and_idempotent(self, left, right):
        assert left.union(right) == right.union(left)
        assert left.union(left) == left

    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_difference_and_antijoin_contain_no_right_rows(self, left, right):
        difference = left.difference(right)
        assert not (difference.rows & right.rows)
        assert difference.rows <= left.rows

    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_join_with_itself_is_identity(self, left, right):
        assert left.natural_join(left) == left

    @SETTINGS
    @given(edges=edge_relations())
    def test_rename_roundtrip(self, edges):
        assert edges.rename("trg", "m").rename("m", "trg") == edges

    @SETTINGS
    @given(edges=edge_relations(), parts=st.integers(min_value=1, max_value=7))
    def test_partitioning_preserves_rows(self, edges, parts):
        for split in (edges.split_round_robin(parts),
                      edges.split_by_columns(("src",), parts)):
            rebuilt = set()
            for chunk in split:
                rebuilt |= chunk.rows
            assert rebuilt == edges.rows


def _warm(relation: Relation, *key_columns: str) -> Relation:
    """Prebuild the hash index(es) the operators would probe."""
    for column in key_columns:
        relation.index_on((column,))
    return relation


class TestRelationAlgebraLawsIndexed:
    """The storage fast paths (memoized indexes, trusted constructors) must
    not drift from set semantics: every law holds with indexes cold and
    with indexes warmed beforehand."""

    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_union_laws_cold_and_warm(self, left, right):
        cold = left.union(right)
        warm = _warm(left, "src", "trg").union(_warm(right, "src", "trg"))
        assert cold == warm == right.union(left)
        assert left.union(left) == left

    @SETTINGS
    @given(a=edge_relations(), b=edge_relations(), c=edge_relations())
    def test_join_is_associative_and_commutative(self, a, b, c):
        b = b.rename_many({"src": "trg", "trg": "mid"})
        c = c.rename_many({"src": "mid", "trg": "fin"})
        cold = a.natural_join(b).natural_join(c)
        assert cold == a.natural_join(b.natural_join(c))
        assert cold == c.natural_join(b).natural_join(a)
        # Same associativity with every index warmed up front.
        for relation in (a, b, c):
            for column in relation.columns:
                relation.index_on((column,))
        warm = a.natural_join(b).natural_join(c)
        assert warm == cold

    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_same_schema_antijoin_is_difference(self, left, right):
        """With all columns in common, the antijoin IS the set difference."""
        cold = left.antijoin(right)
        assert cold == left.difference(right)
        _warm(right, "src", "trg")
        right.index_on(("src", "trg"))
        assert left.antijoin(right) == cold

    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_antijoin_join_partition(self, left, right):
        """Antijoin and semijoin partition the left side."""
        matched = left.difference(left.antijoin(right))
        joined = left.natural_join(right).project(left.columns) \
            .intersection(left)
        assert matched.rows <= left.rows
        assert matched == joined

    @SETTINGS
    @given(edges=edge_relations())
    def test_warmed_join_with_itself_is_identity(self, edges):
        _warm(edges, "src", "trg")
        edges.index_on(("src", "trg"))
        assert edges.natural_join(edges) == edges

    @SETTINGS
    @given(left=edge_relations(), right=edge_relations())
    def test_distributivity_of_join_over_union(self, left, right):
        other = _warm(left.rename_many({"src": "trg", "trg": "out"}), "trg")
        cold = left.union(right).natural_join(other)
        assert cold == left.natural_join(other).union(right.natural_join(other))


class TestRewriterEquivalence:
    @SETTINGS
    @given(data=edge_and_seed())
    def test_every_explored_plan_is_equivalent(self, data):
        from repro.rewriter import explore_plans
        edges, seed = data
        database = {"E": edges, "S": seed}
        term = Union(RelVar("S"),
                     closure_from_seed(RelVar("S"), RelVar("E")))
        reference = evaluate(term, database)
        for plan in explore_plans(term, schemas_of_database(database),
                                  max_plans=12, max_rounds=4):
            assert evaluate(plan, database) == reference
