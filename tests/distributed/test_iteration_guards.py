"""Regression tests: iteration guards fail cleanly instead of hanging.

A fixpoint that does not converge within the configured bound must raise
:class:`~repro.errors.EvaluationError` — from every plan, through every
executor backend, and through the benchmark harness (which converts it into
a ``failed`` run, the paper's red cross).  The bounds are monkeypatched to
tiny values so an ordinary multi-iteration closure plays the role of the
deliberately non-converging fixpoint.
"""

from __future__ import annotations

import pytest

from repro.algebra import RelVar, closure
from repro.distributed import (PGLD, PPLW_POSTGRES, PPLW_SPARK, LocalSQLEngine,
                               SparkCluster, make_plan)
from repro.distributed import local_engine as local_engine_module
from repro.distributed import plans as plans_module
from repro.errors import EvaluationError


@pytest.fixture
def closure_term():
    return closure(RelVar("E"), var="X")


def test_global_loop_guard_raises(paper_database, closure_term, monkeypatch):
    monkeypatch.setattr(plans_module, "MAX_GLOBAL_ITERATIONS", 1)
    plan = make_plan(PGLD, SparkCluster(num_workers=4), paper_database)
    with pytest.raises(EvaluationError, match="did not converge"):
        plan.execute(closure_term)


@pytest.mark.parametrize("executor", ("serial", "threads", "processes"))
@pytest.mark.parametrize("strategy", (PPLW_SPARK, PPLW_POSTGRES))
def test_local_loop_guard_raises_through_executors(
        paper_database, closure_term, monkeypatch, strategy, executor):
    # The bound is read at submission time and shipped with the task, so the
    # guard fires identically on in-process and out-of-process backends.
    monkeypatch.setattr(local_engine_module, "MAX_LOCAL_ITERATIONS", 1)
    with SparkCluster(num_workers=4, executor=executor) as cluster:
        plan = make_plan(strategy, cluster, paper_database)
        with pytest.raises(EvaluationError, match="did not converge"):
            plan.execute(closure_term)


def test_local_engine_guard_raises(paper_database, closure_term):
    engine = LocalSQLEngine(paper_database, max_iterations=1)
    with pytest.raises(EvaluationError, match="did not converge"):
        engine.evaluate_fixpoint(closure_term)


def test_local_engine_guard_reports_bound(paper_database, closure_term):
    engine = LocalSQLEngine(paper_database, max_iterations=2)
    with pytest.raises(EvaluationError, match="within 2 iterations"):
        engine.evaluate_fixpoint(closure_term)


def test_harness_reports_nonconvergence_as_failed_run(paper_edges, monkeypatch):
    """The benchmark harness turns the guard into a failed cell, not a hang."""
    from repro.bench import run_distmura
    from repro.data import LabeledGraph
    from repro.workloads.common import ucrpq_query

    monkeypatch.setattr(local_engine_module, "MAX_LOCAL_ITERATIONS", 1)
    graph = LabeledGraph(name="guard-test")
    graph.add_edges([(row[0], "edge", row[1]) for row in paper_edges.rows])
    query = ucrpq_query("GUARD", "?x,?y <- ?x edge+ ?y")
    measured = run_distmura(graph, query, strategy=PPLW_SPARK,
                            optimize=False, executor="threads")
    assert measured.status == "failed"
    assert "did not converge" in measured.detail
