"""Unit tests of the pluggable executor backends and task-wave accounting."""

from __future__ import annotations

import pytest

from repro.distributed import (EXECUTOR_BACKENDS, ExecutorBackend,
                               SerialExecutor, SparkCluster, ThreadExecutor,
                               make_executor)
from repro.errors import DistributionError


def _square(value):
    return value * value


def _fail(value):
    raise ValueError(f"task {value} failed")


class TestBackends:
    @pytest.mark.parametrize("name", EXECUTOR_BACKENDS)
    def test_results_preserve_submission_order(self, name):
        with make_executor(name, max_workers=3) as executor:
            outcomes = executor.map_tasks(_square, [(i,) for i in range(8)])
        assert [outcome.value for outcome in outcomes] == [i * i for i in range(8)]
        assert all(outcome.seconds >= 0.0 for outcome in outcomes)

    @pytest.mark.parametrize("name", EXECUTOR_BACKENDS)
    def test_task_exception_propagates(self, name):
        with make_executor(name, max_workers=2) as executor:
            with pytest.raises(ValueError, match="task 0 failed"):
                executor.map_tasks(_fail, [(0,), (1,)])

    @pytest.mark.parametrize("name", ("threads", "processes"))
    def test_closures_supported(self, name):
        offset = 10
        with make_executor(name, max_workers=2) as executor:
            outcomes = executor.map_tasks(lambda v: v + offset,
                                          [(1,), (2,), (3,)])
        assert [outcome.value for outcome in outcomes] == [11, 12, 13]

    def test_unknown_backend_rejected(self):
        with pytest.raises(DistributionError, match="unknown executor"):
            make_executor("mapreduce", max_workers=2)

    def test_backend_instance_passes_through(self):
        backend = SerialExecutor()
        assert make_executor(backend, max_workers=4) is backend

    def test_pool_sizes_validated(self):
        with pytest.raises(DistributionError):
            ThreadExecutor(0)

    def test_parallelism_reported(self):
        assert SerialExecutor().parallelism == 1
        assert ThreadExecutor(5).parallelism == 5


class TestClusterTaskAccounting:
    def test_run_tasks_records_wave(self):
        cluster = SparkCluster(num_workers=3, executor="serial")
        outcomes = cluster.run_tasks(_square, [(i,) for i in range(3)])
        assert [o.value for o in outcomes] == [0, 1, 4]
        assert cluster.metrics.tasks_launched == 3
        assert cluster.metrics.task_waves == 1
        assert set(cluster.metrics.task_seconds_per_worker) <= {0, 1, 2}
        assert cluster.metrics.executor == "serial"

    def test_serial_makespan_is_sum(self):
        cluster = SparkCluster(num_workers=4, executor="serial")
        cluster.record_task_wave([1.0, 2.0, 3.0, 4.0], wave_elapsed=10.0)
        # One slot: the wave completes after the sum of its tasks.
        assert cluster.simulated_executor_adjustment == pytest.approx(0.0)

    def test_concurrent_makespan_packs_slots(self):
        cluster = SparkCluster(num_workers=4, executor="threads")
        cluster.record_task_wave([1.0, 2.0, 3.0, 4.0], wave_elapsed=10.0)
        # Four slots: makespan is the straggler (4.0), not the sum (10.0).
        assert cluster.simulated_executor_adjustment == pytest.approx(-6.0)
        assert cluster.metrics.slowest_task_seconds == pytest.approx(4.0)
        assert cluster.metrics.max_worker_seconds == pytest.approx(4.0)
        cluster.close()

    def test_queueing_beyond_worker_count(self):
        cluster = SparkCluster(num_workers=2, executor="threads")
        cluster.record_task_wave([1.0, 1.0, 1.0, 1.0], wave_elapsed=4.0)
        # Two slots, four unit tasks: the wave takes two units.
        assert cluster.simulated_executor_adjustment == pytest.approx(-2.0)
        cluster.close()

    def test_reported_adjustment_combines_network_and_compute(self):
        cluster = SparkCluster(num_workers=4, executor="threads",
                               shuffle_latency=0.5, shuffle_cost_per_tuple=0.0)
        cluster.record_shuffle(100)
        cluster.record_task_wave([2.0, 2.0], wave_elapsed=4.0)
        assert cluster.reported_time_adjustment == pytest.approx(0.5 - 2.0)
        cluster.close()

    def test_reset_clears_wave_accounting(self):
        cluster = SparkCluster(num_workers=4, executor="threads")
        cluster.record_task_wave([1.0, 2.0], wave_elapsed=3.0)
        cluster.reset_metrics()
        assert cluster.simulated_executor_adjustment == 0.0
        assert cluster.metrics.task_waves == 0
        assert cluster.metrics.executor == "threads"
        cluster.close()

    def test_metrics_summary_includes_executor_fields(self):
        cluster = SparkCluster(num_workers=2, executor="serial")
        cluster.run_tasks(_square, [(1,), (2,)])
        summary = cluster.metrics.summary()
        for key in ("executor", "task_waves", "max_worker_seconds",
                    "total_task_seconds", "slowest_task_seconds",
                    "compute_skew"):
            assert key in summary

    def test_compute_skew_of_unbalanced_workers(self):
        cluster = SparkCluster(num_workers=2, executor="serial")
        cluster.record_task_wave([3.0, 1.0])
        assert cluster.metrics.compute_skew() == pytest.approx(1.5)


class TestCustomBackend:
    def test_cluster_accepts_custom_backend(self):
        class Doubler(ExecutorBackend):
            name = "doubler"
            parallelism = 2

            def map_tasks(self, fn, args_list):
                return SerialExecutor().map_tasks(fn, args_list)

        cluster = SparkCluster(num_workers=2, executor=Doubler())
        outcomes = cluster.run_tasks(_square, [(3,)])
        assert outcomes[0].value == 9
        assert cluster.metrics.executor == "doubler"
