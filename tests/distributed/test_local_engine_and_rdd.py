"""Tests of the per-worker local engine, the RDD abstractions and the
physical plan generator/executor."""

from __future__ import annotations

import pytest

from repro.algebra import (Filter, RelVar, closure, closure_from_seed,
                           evaluate)
from repro.data import Eq, Relation
from repro.distributed import (AUTO, DistributedQueryExecutor,
                               DistributedRelation, LocalSQLEngine,
                               PPLW_POSTGRES, PPLW_SPARK,
                               PhysicalPlanGenerator, SetRDD, SparkCluster,
                               fixpoint_to_sql)
from repro.errors import DistributionError, EvaluationError


class TestLocalSQLEngine:
    def test_fixpoint_matches_reference_evaluator(self, paper_database):
        engine = LocalSQLEngine(paper_database)
        term = closure(RelVar("E"), var="X")
        assert engine.evaluate_fixpoint(term) == evaluate(term, paper_database)

    def test_seed_override_restricts_the_recursion(self, paper_database):
        engine = LocalSQLEngine(paper_database)
        term = closure(RelVar("E"), var="X")
        seed = Relation.from_pairs([(1, 2)], columns=("src", "trg"))
        restricted = engine.evaluate_fixpoint(term, seed_override=seed)
        full = engine.evaluate_fixpoint(term)
        assert restricted.rows < full.rows
        assert all(row["src"] == 1 for row in restricted.to_dicts())

    def test_indexes_are_built_once_and_reused(self, paper_database):
        engine = LocalSQLEngine(paper_database)
        term = closure(RelVar("E"), var="X")
        engine.evaluate_fixpoint(term)
        assert engine.stats.index_builds == 1
        assert engine.stats.indexed_probes > 0
        assert engine.stats.iterations >= 3

    def test_filtered_seed_term(self, paper_database):
        engine = LocalSQLEngine(paper_database)
        term = closure_from_seed(Filter(Eq("src", 1), RelVar("S")), RelVar("E"),
                                 var="X")
        assert engine.evaluate_fixpoint(term) == evaluate(term, paper_database)

    def test_unknown_table_raises(self, paper_database):
        engine = LocalSQLEngine(paper_database)
        with pytest.raises(EvaluationError):
            engine.evaluate(RelVar("missing"))

    def test_sql_rendering_mentions_recursive_cte(self, paper_database):
        term = closure(RelVar("E"), var="X")
        sql = fixpoint_to_sql(term)
        assert "WITH RECURSIVE" in sql
        assert "constant_part" in sql


class TestDistributedRelation:
    def test_partition_count_matches_workers(self, paper_edges):
        cluster = SparkCluster(num_workers=3)
        dataset = DistributedRelation.from_relation(cluster, paper_edges)
        assert len(dataset.partitions) == 3
        assert dataset.count() == len(paper_edges)
        assert dataset.collect() == paper_edges

    def test_key_partitioning_is_consistent(self, paper_edges):
        cluster = SparkCluster(num_workers=4)
        dataset = DistributedRelation.from_relation(cluster, paper_edges,
                                                    key_columns=("src",))
        for value in paper_edges.column_values("src"):
            holders = [i for i, part in enumerate(dataset.partitions)
                       if value in part.column_values("src")]
            assert len(holders) == 1

    def test_distinct_records_a_shuffle(self, paper_edges):
        cluster = SparkCluster(num_workers=2)
        dataset = DistributedRelation.from_relation(cluster, paper_edges)
        dataset.distinct()
        assert cluster.metrics.shuffles == 1
        assert cluster.metrics.tuples_shuffled == len(paper_edges)

    def test_broadcast_join_matches_local_join(self, paper_edges, paper_start_edges):
        cluster = SparkCluster(num_workers=2)
        renamed = paper_start_edges.rename("trg", "mid")
        dataset = DistributedRelation.from_relation(cluster, renamed)
        other = paper_edges.rename("src", "mid")
        joined = dataset.join_broadcast(other)
        assert joined.collect() == renamed.natural_join(other)
        assert cluster.metrics.broadcasts == 1

    def test_mismatched_schemas_rejected(self, paper_edges, paper_start_edges):
        cluster = SparkCluster(num_workers=2)
        left = DistributedRelation.from_relation(cluster, paper_edges)
        right = DistributedRelation.from_relation(
            cluster, paper_start_edges.rename("trg", "other"))
        with pytest.raises(DistributionError):
            left.union_distinct(right)

    def test_setrdd_partitionwise_operations_do_not_shuffle(self, paper_edges):
        cluster = SparkCluster(num_workers=2)
        rdd = SetRDD.from_relation(cluster, paper_edges)
        union = rdd.union_partitionwise(rdd)
        difference = rdd.difference_partitionwise(rdd)
        assert union.collect() == paper_edges
        assert difference.count() == 0
        assert cluster.metrics.shuffles == 0


class TestPhysicalPlanGenerator:
    def test_generates_all_three_strategies(self, paper_database):
        cluster = SparkCluster(num_workers=2)
        generator = PhysicalPlanGenerator(cluster, paper_database)
        plans = generator.generate(closure(RelVar("E"), var="X"))
        assert sorted(plan.strategy for plan in plans) == sorted(
            generator.candidate_strategies())

    def test_heuristic_switches_on_memory_budget(self, paper_database):
        cluster = SparkCluster(num_workers=2)
        term = closure(RelVar("E"), var="X")
        spacious = PhysicalPlanGenerator(cluster, paper_database,
                                         memory_per_task=10_000)
        cramped = PhysicalPlanGenerator(cluster, paper_database,
                                        memory_per_task=2)
        assert spacious.select(term).strategy == PPLW_SPARK
        assert cramped.select(term).strategy == PPLW_POSTGRES

    def test_executor_handles_terms_around_fixpoints(self, paper_database):
        cluster = SparkCluster(num_workers=2)
        executor = DistributedQueryExecutor(cluster, paper_database, strategy=AUTO)
        term = Filter(Eq("src", 1), closure(RelVar("E"), var="X"))
        outcome = executor.execute(term)
        assert outcome.relation == evaluate(term, paper_database)
        assert len(outcome.physical_plans) == 1

    def test_executor_rejects_unknown_strategy(self, paper_database):
        from repro.errors import PlanSelectionError
        cluster = SparkCluster(num_workers=2)
        executor = DistributedQueryExecutor(cluster, paper_database,
                                            strategy="not-a-plan")
        with pytest.raises(PlanSelectionError):
            executor.execute(closure(RelVar("E"), var="X"))
