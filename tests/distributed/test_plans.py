"""Tests of the distributed fixpoint plans (Pgld, Pplw^s, Pplw^pg).

Correctness: every plan must return exactly the relation the centralized
evaluator returns.  Communication: Pgld must shuffle at every iteration,
Pplw must not shuffle during the recursion (and must skip the final union
when a stable column exists).
"""

from __future__ import annotations

import pytest

from repro.algebra import RelVar, closure, closure_from_seed, evaluate
from repro.data import Eq
from repro.distributed import (PGLD, PPLW_POSTGRES, PPLW_SPARK, SparkCluster,
                               make_plan, plan_partitioning)
from repro.algebra import Filter, schemas_of_database


@pytest.fixture
def database(paper_database):
    return paper_database


@pytest.fixture
def closure_term():
    return closure(RelVar("E"), var="X")


@pytest.fixture
def seeded_term():
    return closure_from_seed(RelVar("S"), RelVar("E"), var="X")


ALL_PLANS = [PGLD, PPLW_SPARK, PPLW_POSTGRES]


class TestPlanCorrectness:
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure_matches_centralized(self, strategy, database, closure_term):
        cluster = SparkCluster(num_workers=4)
        plan = make_plan(strategy, cluster, database)
        distributed = plan.execute(closure_term)
        assert distributed == evaluate(closure_term, database)

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_seeded_closure_matches_centralized(self, strategy, database, seeded_term):
        cluster = SparkCluster(num_workers=4)
        plan = make_plan(strategy, cluster, database)
        distributed = plan.execute(seeded_term)
        assert distributed == evaluate(seeded_term, database)

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_result_is_independent_of_worker_count(self, strategy, workers,
                                                   database, closure_term):
        cluster = SparkCluster(num_workers=workers)
        plan = make_plan(strategy, cluster, database)
        assert plan.execute(closure_term) == evaluate(closure_term, database)

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_fixpoint_with_filtered_seed(self, strategy, database):
        term = closure_from_seed(Filter(Eq("src", 1), RelVar("E")), RelVar("E"),
                                 var="X")
        cluster = SparkCluster(num_workers=4)
        plan = make_plan(strategy, cluster, database)
        assert plan.execute(term) == evaluate(term, database)

    def test_unknown_strategy_rejected(self, database):
        from repro.errors import DistributionError
        with pytest.raises(DistributionError):
            make_plan("mapreduce", SparkCluster(), database)


class TestCommunicationBehaviour:
    def test_pgld_shuffles_every_iteration(self, database, closure_term):
        cluster = SparkCluster(num_workers=4)
        plan = make_plan(PGLD, cluster, database)
        plan.execute(closure_term)
        metrics = cluster.metrics
        assert metrics.global_iterations >= 2
        # At least one shuffle per iteration (the paper's argument).
        assert metrics.shuffles >= metrics.global_iterations

    def test_pplw_does_not_shuffle_during_recursion(self, database, closure_term):
        cluster = SparkCluster(num_workers=4)
        plan = make_plan(PPLW_SPARK, cluster, database)
        plan.execute(closure_term)
        metrics = cluster.metrics
        assert metrics.local_iterations >= 2
        # No shuffle at all: the stable-column partitioning makes even the
        # final union shuffle-free.
        assert metrics.shuffles == 0
        assert metrics.final_union_skipped

    def test_pplw_shuffles_less_than_pgld(self, database, closure_term):
        pgld_cluster = SparkCluster(num_workers=4)
        make_plan(PGLD, pgld_cluster, database).execute(closure_term)
        pplw_cluster = SparkCluster(num_workers=4)
        make_plan(PPLW_SPARK, pplw_cluster, database).execute(closure_term)
        assert (pplw_cluster.metrics.tuples_shuffled
                < pgld_cluster.metrics.tuples_shuffled)

    def test_stable_column_partitioning_detected(self, database, closure_term):
        decision = plan_partitioning(closure_term, schemas_of_database(database))
        assert decision.strategy == "stable-column"
        assert decision.disjoint
        assert "src" in decision.key_columns

    def test_pplw_postgres_reports_marshalling(self, database, closure_term):
        cluster = SparkCluster(num_workers=4)
        make_plan(PPLW_POSTGRES, cluster, database).execute(closure_term)
        assert cluster.metrics.tuples_marshalled > 0

    def test_broadcast_recorded_for_variable_part(self, database, closure_term):
        cluster = SparkCluster(num_workers=4)
        make_plan(PPLW_SPARK, cluster, database).execute(closure_term)
        assert cluster.metrics.broadcasts >= 1
        assert cluster.metrics.tuples_broadcast >= len(database["E"])


class TestRoundRobinFallback:
    def test_no_stable_column_still_correct(self, database):
        # A fixpoint over a "same-generation"-like step has no stable column;
        # the split falls back to round-robin and the final union dedups.
        from repro.algebra import compose
        step = compose(compose(RelVar("E"), RelVar("X")), RelVar("E"))
        from repro.algebra import Fixpoint, Union
        term = Fixpoint("X", Union(RelVar("E"), step))
        schemas = schemas_of_database(database)
        decision = plan_partitioning(term, schemas)
        assert decision.strategy == "round-robin"
        cluster = SparkCluster(num_workers=3)
        plan = make_plan(PPLW_SPARK, cluster, database)
        assert plan.execute(term) == evaluate(term, database)
        assert not cluster.metrics.final_union_skipped
