"""Regression tests for the LocalSQLEngine hash-index cache identity.

The cache used to be keyed on ``id(relation)``.  CPython reuses the
addresses of collected objects, so after a relation died a *different*
relation could land on the same address and silently receive the dead
relation's index — wrong join results with no error.  The cache is now
keyed on the relation object itself (held strongly, value-based equality).
"""

from __future__ import annotations

import gc

from repro.data.relation import Relation
from repro.distributed.local_engine import LocalSQLEngine, _HashIndex


def edges(pairs):
    return Relation.from_pairs(pairs, columns=("src", "trg"))


def test_index_is_correct_after_id_reuse():
    """A new relation allocated at a dead relation's address must not
    inherit the dead relation's index (the id-keying bug)."""
    engine = LocalSQLEngine({})
    first = edges([(1, 2), (1, 3)])
    stale = engine._index_for(first, ("src",))
    assert set(stale.buckets) == {(1,)}
    dead_id = id(first)
    del first
    gc.collect()
    # Try to land a fresh relation on the reclaimed address; CPython's
    # allocator usually reuses it immediately for same-shaped objects.
    fresh = None
    for _ in range(4096):
        candidate = edges([(7, 8), (9, 10)])
        if id(candidate) == dead_id:
            fresh = candidate
            break
    if fresh is None:  # pragma: no cover - allocator did not cooperate
        fresh = edges([(7, 8), (9, 10)])
    index = engine._index_for(fresh, ("src",))
    assert set(index.buckets) == {(7,), (9,)}
    assert index.probe((1,)) == []


def test_cache_key_holds_relation_strongly():
    engine = LocalSQLEngine({})
    relation = edges([(1, 2)])
    engine._index_for(relation, ("src",))
    (cached_relation, _columns), = engine._index_cache.keys()
    assert cached_relation is relation


def test_same_relation_reuses_index_per_key_columns():
    engine = LocalSQLEngine({})
    relation = edges([(1, 2), (2, 3)])
    first = engine._index_for(relation, ("src",))
    again = engine._index_for(relation, ("src",))
    other_columns = engine._index_for(relation, ("trg",))
    assert again is first
    assert other_columns is not first
    assert engine.stats.index_builds == 2


def test_equal_valued_relation_shares_index():
    """Value-based keying: an identical relation may share the index."""
    engine = LocalSQLEngine({})
    first = edges([(1, 2)])
    twin = edges([(1, 2)])
    assert engine._index_for(first, ("src",)) is engine._index_for(twin, ("src",))
    assert engine.stats.index_builds == 1


def test_distinct_relations_get_distinct_indexes():
    engine = LocalSQLEngine({})
    one = engine._index_for(edges([(1, 2)]), ("src",))
    two = engine._index_for(edges([(5, 6)]), ("src",))
    assert set(one.buckets) == {(1,)}
    assert set(two.buckets) == {(5,)}


def test_hash_index_probe_semantics():
    index = _HashIndex(edges([(1, 2), (1, 3), (4, 5)]), ("src",))
    assert sorted(index.probe((1,))) == [(1, 2), (1, 3)]
    assert index.probe((99,)) == []
