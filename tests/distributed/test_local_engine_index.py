"""Regression tests for the hash-index cache identity, on the shared layer.

History: the LocalSQLEngine cache was first keyed on ``id(relation)``.
CPython reuses the addresses of collected objects, so after a relation died
a *different* relation could land on the same address and silently receive
the dead relation's index — wrong join results with no error.  PR 2 re-keyed
the cache on the relation object; this PR moves the index onto the relation
itself (``Relation.index_on`` memoizes on the instance), which makes the
failure mode structurally impossible: an index cannot outlive its relation
because it *is part of* the relation.  These tests pin that property and
the engine's build/reuse accounting on top of the shared layer.
"""

from __future__ import annotations

import gc
import pickle

from repro.data.relation import Relation
from repro.data.storage import HashIndex, compatibility_mode
from repro.distributed.local_engine import LocalSQLEngine


def edges(pairs):
    return Relation.from_pairs(pairs, columns=("src", "trg"))


def test_index_is_correct_after_id_reuse():
    """A new relation allocated at a dead relation's address must not
    inherit the dead relation's index (the original id-keying bug)."""
    engine = LocalSQLEngine({})
    first = edges([(1, 2), (1, 3)])
    stale = engine._index_for(first, ("src",))
    assert set(stale.buckets) == {(1,)}
    dead_id = id(first)
    del first
    gc.collect()
    # Try to land a fresh relation on the reclaimed address; CPython's
    # allocator usually reuses it immediately for same-shaped objects.
    fresh = None
    for _ in range(4096):
        candidate = edges([(7, 8), (9, 10)])
        if id(candidate) == dead_id:
            fresh = candidate
            break
    if fresh is None:  # pragma: no cover - allocator did not cooperate
        fresh = edges([(7, 8), (9, 10)])
    index = engine._index_for(fresh, ("src",))
    assert set(index.buckets) == {(7,), (9,)}
    assert index.probe((1,)) == []


def test_engine_uses_the_shared_relation_index():
    """The engine's index IS the relation's memoized index — one layer."""
    engine = LocalSQLEngine({})
    relation = edges([(1, 2), (2, 3)])
    via_engine = engine._index_for(relation, ("src",))
    assert via_engine is relation.index_on(("src",))
    assert relation.has_index(("src",))


def test_same_relation_reuses_index_per_key_columns():
    engine = LocalSQLEngine({})
    relation = edges([(1, 2), (2, 3)])
    first = engine._index_for(relation, ("src",))
    again = engine._index_for(relation, ("src",))
    other_columns = engine._index_for(relation, ("trg",))
    assert again is first
    assert other_columns is not first
    assert engine.stats.index_builds == 2
    assert engine.stats.index_reuses == 1


def test_index_cannot_outlive_its_relation():
    """The memoization lives on the relation: no external cache retains it."""
    engine = LocalSQLEngine({})
    relation = edges([(1, 2)])
    engine._index_for(relation, ("src",))
    # The engine holds no index state of its own anymore.
    assert not hasattr(engine, "_index_cache")


def test_distinct_relations_get_distinct_indexes():
    engine = LocalSQLEngine({})
    one = engine._index_for(edges([(1, 2)]), ("src",))
    two = engine._index_for(edges([(5, 6)]), ("src",))
    assert set(one.buckets) == {(1,)}
    assert set(two.buckets) == {(5,)}


def test_hash_index_probe_semantics():
    relation = edges([(1, 2), (1, 3), (4, 5)])
    index = relation.index_on(("src",))
    assert isinstance(index, HashIndex)
    assert sorted(index.probe((1,))) == [(1, 2), (1, 3)]
    assert index.probe((99,)) == []
    assert (4,) in index
    assert (99,) not in index
    assert len(index) == 3


def test_pickling_drops_the_index_cache():
    """Indexes are derived data: never shipped to process-pool workers."""
    relation = edges([(1, 2), (2, 3)])
    relation.index_on(("src",))
    clone = pickle.loads(pickle.dumps(relation))
    assert clone == relation
    assert not clone.has_index(("src",))
    # The clone can rebuild an equivalent index on demand.
    assert clone.index_on(("src",)).probe((1,)) == [(1, 2)]


def test_compatibility_mode_disables_memoization():
    relation = edges([(1, 2)])
    with compatibility_mode():
        cold = relation.index_on(("src",))
        assert not relation.has_index(("src",))
        assert relation.index_on(("src",)) is not cold
    # Back in normal mode the index is memoized again.
    warm = relation.index_on(("src",))
    assert relation.index_on(("src",)) is warm
