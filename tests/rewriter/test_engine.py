"""Tests of the plan-space exploration engine.

The main invariant: every plan in the explored space evaluates to the same
relation as the original query.
"""

from __future__ import annotations

import pytest

from repro.algebra import (Fixpoint, evaluate, schemas_of_database,
                           subterms_of_type)
from repro.query import parse_query, translate_query
from repro.rewriter import MuRewriter, canonicalize, explore_plans


@pytest.fixture
def database(small_labeled_graph):
    return small_labeled_graph.relations()


@pytest.fixture
def schemas(database):
    return schemas_of_database(database)


def explore_query(text: str, schemas, max_plans: int = 80):
    term = translate_query(parse_query(text))
    return term, explore_plans(term, schemas, max_plans=max_plans)


ALL_EQUIVALENT_QUERIES = [
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x isLocatedIn+ europe",
    "?x <- grenoble isLocatedIn+ ?x",
    "?x,?y <- ?x livesIn/isLocatedIn+ ?y",
    "?x,?y <- ?x knows+/livesIn ?y",
    "?x,?y <- ?x knows+/livesIn+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
]


class TestPlanEquivalence:
    @pytest.mark.parametrize("query_text", ALL_EQUIVALENT_QUERIES)
    def test_all_plans_compute_the_same_result(self, query_text, database, schemas):
        term, plans = explore_query(query_text, schemas)
        reference = evaluate(term, database)
        assert len(plans) >= 2, "exploration should find alternative plans"
        for plan in plans:
            assert evaluate(plan, database) == reference

    def test_original_plan_is_included_first(self, schemas):
        term, plans = explore_query("?x,?y <- ?x knows+ ?y", schemas)
        assert plans[0] == canonicalize(term)


class TestPlanSpaceContents:
    def test_filtered_closure_gets_pushed_plan(self, database, schemas):
        # ?x <- ?x isLocatedIn+ europe (class C2) needs reversal + pushing:
        # some plan must contain a fixpoint whose constant part is filtered,
        # and that plan must produce far fewer intermediate tuples.
        from repro.algebra import EvaluationStats
        term, plans = explore_query("?x <- ?x isLocatedIn+ europe", schemas)
        baseline = EvaluationStats()
        evaluate(term, database, stats=baseline)
        best_tuples = baseline.tuples_produced
        for plan in plans[1:]:
            stats = EvaluationStats()
            evaluate(plan, database, stats=stats)
            best_tuples = min(best_tuples, stats.tuples_produced)
        assert best_tuples < baseline.tuples_produced

    def test_concatenated_closures_get_merged_plan(self, schemas):
        term, plans = explore_query("?x,?y <- ?x knows+/livesIn+ ?y", schemas)
        merged_plans = [
            plan for plan in plans
            if len(subterms_of_type(plan, Fixpoint)) == 1
        ]
        assert merged_plans, "merge-closures should produce a single-fixpoint plan"

    def test_exploration_respects_max_plans(self, schemas):
        term = translate_query(parse_query("?x,?y <- ?x knows+/livesIn+ ?y"))
        plans = explore_plans(term, schemas, max_plans=5)
        assert len(plans) <= 5

    def test_exploration_is_deterministic(self, schemas):
        term = translate_query(parse_query("?x <- ?x isLocatedIn+ europe"))
        first = explore_plans(term, schemas)
        second = explore_plans(term, schemas)
        assert first == second

    def test_non_recursive_query_still_explores(self, database, schemas):
        term = translate_query(parse_query("?x,?y <- ?x knows/livesIn ?y"))
        plans = explore_plans(term, schemas)
        reference = evaluate(term, database)
        for plan in plans:
            assert evaluate(plan, database) == reference


class TestRewriterConfiguration:
    def test_engine_with_no_rules_returns_input_only(self, schemas):
        term = translate_query(parse_query("?x,?y <- ?x knows+ ?y"))
        rewriter = MuRewriter(rules=[])
        assert rewriter.explore(term, schemas) == [canonicalize(term)]

    def test_rewrites_at_root_only(self, schemas):
        from repro.algebra import RelVar, closure, compose
        term = compose(closure(RelVar("knows")), closure(RelVar("livesIn")))
        rewriter = MuRewriter()
        rewrites = rewriter.rewrites_at_root(term, schemas)
        assert any(isinstance(rewrite, Fixpoint) for rewrite in rewrites)
