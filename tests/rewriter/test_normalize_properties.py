"""Property tests for canonical normalization and plan-space soundness.

Two properties the plan-space exploration silently relies on:

* :func:`repro.rewriter.normalize.canonicalize` is idempotent — a
  canonical form is its own canonical form, otherwise plan identity (and
  with it deduplication) is unstable;
* every plan returned by :class:`~repro.rewriter.engine.MuRewriter` is
  semantically equivalent to the original term — they must all evaluate to
  the same relation on a concrete database.

The test corpus is the set of plans the rewriter itself discovers for a
spread of translated workload queries, which exercises far more operator
shapes than hand-written terms would.
"""

from __future__ import annotations

import pytest

from repro.algebra import evaluate, schemas_of_database
from repro.engine import DistMuRA
from repro.query.parser import parse_query
from repro.query.translate import translate_query
from repro.rewriter.engine import MuRewriter
from repro.rewriter.normalize import cache_key, canonicalize

QUERIES = (
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
    "?x,?y <- ?x knows+/livesIn ?y",
    "?x,?y <- ?x (knows|worksAt)+ ?y",
)


@pytest.fixture(scope="module")
def rewriter():
    return MuRewriter(max_plans=40, max_rounds=6)


def explored_plans(rewriter, database, query_text):
    term = translate_query(parse_query(query_text))
    return term, rewriter.explore(term, schemas_of_database(database))


@pytest.mark.parametrize("query_text", QUERIES)
def test_canonicalize_is_idempotent_on_explored_plans(
        small_labeled_graph, rewriter, query_text):
    database = small_labeled_graph.relations()
    term, plans = explored_plans(rewriter, database, query_text)
    assert len(plans) >= 1
    once = canonicalize(term)
    assert canonicalize(once) == once
    for plan in plans:
        # explore() returns canonical forms, so each plan must be a fixed
        # point of canonicalize.
        assert canonicalize(plan) == plan


@pytest.mark.parametrize("query_text", QUERIES)
def test_all_explored_plans_evaluate_identically(
        small_labeled_graph, rewriter, query_text):
    database = small_labeled_graph.relations()
    term, plans = explored_plans(rewriter, database, query_text)
    reference = evaluate(term, database)
    for plan in plans:
        assert evaluate(plan, database) == reference, (
            f"plan diverges from the original term:\n{plan}")


def test_canonicalize_stable_under_variable_renaming(small_labeled_graph):
    """Two alpha-equivalent fixpoints normalise to the same term."""
    from repro.algebra import RelVar, closure

    first = closure(RelVar("knows"), var="X_7")
    second = closure(RelVar("knows"), var="X_99")
    assert canonicalize(first) == canonicalize(second)


@pytest.mark.parametrize("query_text", QUERIES)
def test_cache_key_stable_across_sessions(small_labeled_graph, query_text):
    """The same UCRPQ translated in two different sessions keys identically.

    Each translation draws fresh generated column/variable names from the
    process-global counters, so two sessions (or two translations in one
    session) produce syntactically different terms; ``cache_key`` must
    erase that difference — it is what makes the serving layer's plan
    cache shareable across sessions.
    """
    first_session = DistMuRA(small_labeled_graph)
    second_session = DistMuRA(small_labeled_graph)
    first_term = first_session.translate(parse_query(query_text))
    second_term = second_session.translate(parse_query(query_text))
    # The raw terms genuinely differ (fresh names) ...
    assert cache_key(first_term) == cache_key(second_term)
    # ... and the key is exactly the printed canonical form, a plain string
    # (stable under hash randomisation, shareable between processes).
    assert isinstance(cache_key(first_term), str)
    assert canonicalize(first_term) == canonicalize(second_term)


def test_cache_key_distinguishes_different_queries(small_labeled_graph):
    engine = DistMuRA(small_labeled_graph)
    knows = engine.translate(parse_query("?x,?y <- ?x knows+ ?y"))
    works = engine.translate(parse_query("?x,?y <- ?x worksAt+ ?y"))
    assert cache_key(knows) != cache_key(works)


def test_cache_key_invariant_under_repeated_translation(small_labeled_graph):
    """Translating the same query many times never fragments the key."""
    engine = DistMuRA(small_labeled_graph)
    text = "?x,?y <- ?x knows+/livesIn ?y"
    keys = {cache_key(engine.translate(parse_query(text))) for _ in range(5)}
    assert len(keys) == 1


def test_distmura_executes_any_explored_plan(small_labeled_graph, rewriter):
    """Exploration output is executable end to end, not only comparable."""
    engine = DistMuRA(small_labeled_graph, optimize=False)
    database = small_labeled_graph.relations()
    term, plans = explored_plans(rewriter, database, QUERIES[0])
    reference = evaluate(term, database)
    for plan in plans[:10]:
        outcome = engine.execute_term(plan)
        assert outcome.relation == reference
