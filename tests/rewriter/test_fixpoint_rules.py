"""Tests of the fixpoint-specific rewrite rules.

The key property checked throughout: every rewriting produced by a rule
evaluates to exactly the same relation as the original term.
"""

from __future__ import annotations

import pytest

from repro.algebra import (LEFT_TO_RIGHT, RIGHT_TO_LEFT, Filter, Fixpoint,
                           RelVar, closure, compose, evaluate,
                           schemas_of_database, stable_columns)
from repro.data import Eq
from repro.rewriter import (MergeClosures, PushAntiProjectIntoFixpoint,
                            PushFilterIntoFixpoint, PushJoinIntoClosure,
                            ReverseClosure, RewriteContext, match_closure,
                            match_compose)


@pytest.fixture
def database(small_labeled_graph):
    return small_labeled_graph.relations()


@pytest.fixture
def context(database):
    return RewriteContext(base_schemas=schemas_of_database(database))


class TestPatternMatching:
    def test_match_compose(self):
        term = compose(RelVar("a"), RelVar("b"))
        shape = match_compose(term)
        assert shape is not None
        assert shape.left == RelVar("a")
        assert shape.right == RelVar("b")

    def test_match_compose_rejects_other_terms(self):
        assert match_compose(RelVar("a")) is None
        assert match_compose(RelVar("a").join(RelVar("b"))) is None

    def test_match_closure_left_to_right(self):
        fixpoint = closure(RelVar("knows"), direction=LEFT_TO_RIGHT)
        shape = match_closure(fixpoint)
        assert shape is not None
        assert shape.direction == LEFT_TO_RIGHT
        assert shape.step == RelVar("knows")
        assert shape.is_pure

    def test_match_closure_right_to_left(self):
        fixpoint = closure(RelVar("knows"), direction=RIGHT_TO_LEFT)
        shape = match_closure(fixpoint)
        assert shape is not None
        assert shape.direction == RIGHT_TO_LEFT

    def test_seeded_closure_is_not_pure(self):
        seeded = Filter(Eq("src", "alice"), RelVar("knows"))
        fixpoint = closure(RelVar("knows"), direction=LEFT_TO_RIGHT)
        from repro.algebra import closure_from_seed
        term = closure_from_seed(seeded, RelVar("knows"))
        shape = match_closure(term)
        assert shape is not None
        assert not shape.is_pure
        assert match_closure(fixpoint).is_pure


class TestReverseClosure:
    def test_reversal_preserves_semantics(self, database, context):
        original = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        reversed_plans = list(ReverseClosure().apply(original, context))
        assert len(reversed_plans) == 1
        reversed_term = reversed_plans[0]
        assert isinstance(reversed_term, Fixpoint)
        assert evaluate(original, database) == evaluate(reversed_term, database)

    def test_reversal_flips_stable_column(self, database, context):
        schemas = schemas_of_database(database)
        original = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        assert stable_columns(original, schemas) == frozenset({"src"})
        reversed_term = ReverseClosure().apply_or_raise(original, context)
        assert stable_columns(reversed_term, schemas) == frozenset({"trg"})

    def test_seeded_closure_is_not_reversed(self, database, context):
        from repro.algebra import closure_from_seed
        seeded = closure_from_seed(Filter(Eq("src", "alice"), RelVar("knows")),
                                   RelVar("knows"))
        assert list(ReverseClosure().apply(seeded, context)) == []


class TestPushFilterIntoFixpoint:
    def test_filter_on_stable_column_is_pushed(self, database, context):
        fixpoint = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        term = Filter(Eq("src", "grenoble"), fixpoint)
        rewritten = PushFilterIntoFixpoint().apply_or_raise(term, context)
        assert isinstance(rewritten, Fixpoint)
        assert evaluate(term, database) == evaluate(rewritten, database)

    def test_filter_on_unstable_column_is_not_pushed(self, database, context):
        fixpoint = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        term = Filter(Eq("trg", "europe"), fixpoint)
        assert list(PushFilterIntoFixpoint().apply(term, context)) == []

    def test_reversal_then_push_handles_target_filters(self, database, context):
        fixpoint = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        original = Filter(Eq("trg", "europe"), fixpoint)
        reversed_fix = ReverseClosure().apply_or_raise(fixpoint, context)
        pushed = PushFilterIntoFixpoint().apply_or_raise(
            Filter(Eq("trg", "europe"), reversed_fix), context)
        assert evaluate(original, database) == evaluate(pushed, database)

    def test_pushed_plan_avoids_full_closure(self, database, context):
        # The pushed plan only explores paths from the filtered sources,
        # which shows up as fewer produced tuples.
        from repro.algebra import EvaluationStats
        fixpoint = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        term = Filter(Eq("src", "grenoble"), fixpoint)
        rewritten = PushFilterIntoFixpoint().apply_or_raise(term, context)
        stats_original = EvaluationStats()
        stats_pushed = EvaluationStats()
        evaluate(term, database, stats=stats_original)
        evaluate(rewritten, database, stats=stats_pushed)
        assert stats_pushed.tuples_produced < stats_original.tuples_produced


class TestPushJoinIntoClosure:
    def test_left_composition_into_ltr_closure(self, database, context):
        term = compose(RelVar("livesIn"),
                       closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT))
        rewritten = PushJoinIntoClosure().apply_or_raise(term, context)
        assert isinstance(rewritten, Fixpoint)
        assert evaluate(term, database) == evaluate(rewritten, database)

    def test_right_composition_into_rtl_closure(self, database, context):
        term = compose(closure(RelVar("knows"), direction=RIGHT_TO_LEFT),
                       RelVar("livesIn"))
        rewritten = PushJoinIntoClosure().apply_or_raise(term, context)
        assert isinstance(rewritten, Fixpoint)
        assert evaluate(term, database) == evaluate(rewritten, database)

    def test_wrong_direction_is_not_pushed(self, database, context):
        term = compose(RelVar("livesIn"),
                       closure(RelVar("isLocatedIn"), direction=RIGHT_TO_LEFT))
        assert list(PushJoinIntoClosure().apply(term, context)) == []

    def test_composition_of_plain_relations_is_not_rewritten(self, context):
        term = compose(RelVar("livesIn"), RelVar("isLocatedIn"))
        assert list(PushJoinIntoClosure().apply(term, context)) == []


class TestMergeClosures:
    def test_merge_preserves_semantics(self, database, context):
        term = compose(closure(RelVar("knows")), closure(RelVar("livesIn")))
        rewritten = MergeClosures().apply_or_raise(term, context)
        assert isinstance(rewritten, Fixpoint)
        assert evaluate(term, database) == evaluate(rewritten, database)

    def test_merged_fixpoint_is_single_fixpoint(self, database, context):
        from repro.algebra import Fixpoint as FixpointNode, subterms_of_type
        term = compose(closure(RelVar("knows")), closure(RelVar("isLocatedIn")))
        rewritten = MergeClosures().apply_or_raise(term, context)
        assert len(subterms_of_type(rewritten, FixpointNode)) == 1

    def test_merge_requires_pure_closures(self, database, context):
        from repro.algebra import closure_from_seed
        seeded = closure_from_seed(Filter(Eq("src", "alice"), RelVar("knows")),
                                   RelVar("knows"))
        term = compose(seeded, closure(RelVar("livesIn")))
        assert list(MergeClosures().apply(term, context)) == []


class TestPushAntiProjectIntoFixpoint:
    def test_drop_stable_column_before_recursion(self, database, context):
        fixpoint = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        term = fixpoint.antiproject("src")
        rewritten = PushAntiProjectIntoFixpoint().apply_or_raise(term, context)
        assert isinstance(rewritten, Fixpoint)
        assert evaluate(term, database) == evaluate(rewritten, database)

    def test_unstable_column_is_not_pushed(self, database, context):
        fixpoint = closure(RelVar("isLocatedIn"), direction=LEFT_TO_RIGHT)
        term = fixpoint.antiproject("trg")
        assert list(PushAntiProjectIntoFixpoint().apply(term, context)) == []
