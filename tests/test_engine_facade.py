"""End-to-end tests of the DistMuRA session facade."""

from __future__ import annotations

import math

import pytest

from repro import DistMuRA, PGLD, PPLW_SPARK
from repro.errors import TranslationError


@pytest.fixture
def engine(small_labeled_graph):
    return DistMuRA(small_labeled_graph, num_workers=3)


class TestQueryExecution:
    def test_simple_closure_query(self, engine):
        result = engine.query("?x,?y <- ?x knows+ ?y")
        assert ("alice", "dave") in result.relation.to_pairs("x", "y")
        assert result.plans_explored >= 1
        assert not math.isnan(result.estimated_cost)

    def test_filtered_query_classes_are_reported(self, engine):
        result = engine.query("?x <- ?x isLocatedIn+ europe")
        assert "C2" in result.query_classes
        assert result.relation.column_values("x") == {
            "grenoble", "lyon", "france", "inria"}

    def test_conjunctive_query(self, engine):
        result = engine.query("?x,?c <- ?x knows+ ?y, ?y livesIn ?c")
        assert ("alice", "lyon") in result.relation.to_pairs("x", "c")

    def test_strategies_produce_identical_results(self, small_labeled_graph):
        query = "?x,?y <- ?x knows+/livesIn+ ?y"
        baseline = DistMuRA(small_labeled_graph, strategy=PGLD).query(query)
        parallel = DistMuRA(small_labeled_graph, strategy=PPLW_SPARK).query(query)
        automatic = DistMuRA(small_labeled_graph).query(query)
        assert baseline.relation == parallel.relation == automatic.relation

    def test_optimizer_can_be_disabled(self, small_labeled_graph):
        optimized = DistMuRA(small_labeled_graph, optimize=True).query(
            "?x <- grenoble isLocatedIn+ ?x")
        unoptimized = DistMuRA(small_labeled_graph, optimize=False).query(
            "?x <- grenoble isLocatedIn+ ?x")
        assert optimized.relation == unoptimized.relation
        assert unoptimized.plans_explored == 1

    def test_unknown_label_raises(self, engine):
        with pytest.raises(TranslationError):
            engine.query("?x,?y <- ?x unknownLabel+ ?y")

    def test_metrics_are_attached(self, engine):
        result = engine.query("?x,?y <- ?x knows+ ?y", strategy=PGLD)
        assert result.metrics.global_iterations >= 1
        assert result.metrics.shuffles >= 1

    def test_summary_is_flat_dictionary(self, engine):
        result = engine.query("?x,?y <- ?x knows+ ?y")
        summary = result.summary()
        assert summary["rows"] == len(result.relation)
        assert "shuffles" in summary
        assert "partitioning" in summary


class TestIntrospection:
    def test_explain_mentions_classes_and_plans(self, engine):
        text = engine.explain("?x <- ?x isLocatedIn+ europe")
        assert "C2" in text
        assert "plans explored" in text

    def test_repr_is_informative(self, engine):
        assert "workers=3" in repr(engine)

    def test_accepts_plain_database_dict(self, small_labeled_graph):
        engine = DistMuRA(small_labeled_graph.relations())
        result = engine.query("?x,?y <- ?x knows ?y")
        assert len(result.relation) == 3


class TestMutations:
    def test_add_edges_updates_forward_inverse_and_facts(self, engine):
        before_facts = len(engine.database["facts"])
        touched = engine.add_edges("knows", [("dave", "erin")])
        assert set(touched) == {"knows", "-knows", "facts"}
        assert ("dave", "erin") in engine.database["knows"].to_pairs("src", "trg")
        assert ("erin", "dave") in engine.database["-knows"].to_pairs("src", "trg")
        assert len(engine.database["facts"]) == before_facts + 1
        assert engine.database_version == 1

    def test_remove_edges_reverts_add(self, engine):
        snapshot = {name: rel for name, rel in engine.database.items()}
        engine.add_edges("knows", [("dave", "erin")])
        engine.remove_edges("knows", [("dave", "erin")])
        for name, relation in snapshot.items():
            assert engine.database[name] == relation
        assert engine.database_version == 2

    def test_new_label_becomes_queryable_with_inverse(self, engine):
        engine.add_edges("mentors", [("alice", "bob")])
        assert len(engine.query("?x,?y <- ?x mentors ?y").relation) == 1
        assert len(engine.query("?x,?y <- ?x -mentors ?y").relation) == 1

    def test_mutating_inverse_directly_is_rejected(self, engine):
        with pytest.raises(TranslationError):
            engine.add_edges("-knows", [("bob", "alice")])

    def test_remove_from_unknown_relation_raises(self, engine):
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError):
            engine.remove_edges("nosuch", [("a", "b")])

    def test_schema_mismatch_leaves_database_unchanged(self, small_labeled_graph):
        """Atomicity: a rejected mutation must not partially apply."""
        from repro import Relation
        from repro.errors import SchemaError
        database = {
            "knows": Relation.from_pairs([("a", "b")], columns=("src", "trg")),
            "-knows": Relation(("x", "y"), [("b", "a")]),
        }
        engine = DistMuRA(database, num_workers=2)
        with pytest.raises(SchemaError):
            engine.add_edges("knows", [("c", "d")])
        assert len(engine.database["knows"]) == 1
        assert engine.database_version == 0
        assert engine.relation_version("knows") == 0
