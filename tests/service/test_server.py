"""QueryService behaviour: serving, caching, admission, timeouts, metrics."""

from __future__ import annotations

import threading
import time

import pytest

from repro import (DistMuRA, QueryService, ServiceError,
                   ServiceOverloadError)
from repro.service import FAILED, OK

KNOWS = "?x,?y <- ?x knows+ ?y"
LIVES = "?x <- ?x livesIn/isLocatedIn+ europe"


@pytest.fixture
def engine(small_labeled_graph):
    with DistMuRA(small_labeled_graph, num_workers=2) as engine:
        yield engine


@pytest.fixture
def service(engine):
    with QueryService(engine, max_in_flight=2) as service:
        yield service


def test_query_matches_engine_and_caches_repeat(service, engine,
                                                small_labeled_graph):
    fresh = DistMuRA(small_labeled_graph, num_workers=2)
    expected = fresh.query(KNOWS).relation
    first = service.query(KNOWS)
    assert first.status == OK
    assert first.result.relation == expected
    assert first.plan_cache_hit is False and first.result_cache_hit is False
    second = service.query(KNOWS)
    assert second.result.relation == expected
    assert second.plan_cache_hit is True and second.result_cache_hit is True
    fresh.close()


def test_submit_returns_future(service):
    future = service.submit(KNOWS)
    served = future.result(timeout=10)
    assert served.status == OK and served.rows > 0


def test_batch_preserves_order(service):
    results = service.batch([KNOWS, LIVES, KNOWS])
    assert [r.query_text for r in results] == [KNOWS, LIVES, KNOWS]
    assert all(r.status == OK for r in results)
    # The third submission repeats the first: it must be a cache hit.
    assert results[2].result_cache_hit is True


def test_unknown_label_maps_to_failed_status(service):
    served = service.query("?x,?y <- ?x nosuchlabel+ ?y")
    assert served.status == FAILED
    assert "nosuchlabel" in served.detail
    assert served.result is None


def test_mutation_maintains_and_refreshes_results(service, engine):
    before = service.query(KNOWS)
    touched = service.add_edges("knows", [("dave", "erin")])
    assert "knows" in touched
    # The insert-only commit maintained the cached fixpoint, so the
    # fresh-head query is served from the promoted entry — and it must
    # reflect the new edge, not the pre-commit rows.
    after = service.query(KNOWS)
    assert after.result_cache_hit is True
    assert engine.last_maintenance.resumed == 1
    assert after.rows > before.rows
    assert ("dave", "erin") in after.result.relation.to_pairs("x", "y")
    # Deletions on this tiny graph exceed the maintenance cost threshold:
    # the entry is skipped (decision logged) and the next query
    # recomputes through the normal miss path — correctly either way.
    service.remove_edges("knows", [("dave", "erin")])
    decisions = {d.action for d in engine.last_maintenance.decisions}
    assert decisions & {"dred", "fallback-recompute"}
    restored = service.query(KNOWS)
    assert restored.result.relation == before.result.relation


def test_mutation_changes_cost_estimates_via_catalog(service, engine):
    base = engine.catalog.get("knows").cardinality
    service.add_edges("knows", [(f"n{i}", f"n{i+1}") for i in range(20)])
    assert engine.catalog.get("knows").cardinality == base + 20


def test_stats_and_versions_are_snapshot_atomic(engine):
    """A reader can never pair a new fingerprint with stale statistics:
    versions and the statistics catalog live on the same immutable
    snapshot, so the unlocked plan phase reads both from one object."""
    before = engine.snapshot()
    before_cardinality = before.catalog.get("knows").cardinality
    engine.add_edges("knows", [("p", "q")])
    after = engine.snapshot()
    assert after is not before
    assert after.version == before.version + 1
    assert after.catalog.get("knows").cardinality == before_cardinality + 1
    # The superseded snapshot still reports its own (old) pairing.
    assert before.catalog.get("knows").cardinality == before_cardinality
    assert before.relation_version("knows") != after.relation_version("knows")


def test_admission_control_rejects_when_queue_full(engine):
    release = threading.Event()
    graph_lock_query = KNOWS

    service = QueryService(engine, max_in_flight=1, queue_capacity=1)
    try:
        # Occupy the single worker with a query that blocks on the engine
        # lock, then fill the one queue slot.
        with service.session.execution_lock:
            blocked = service.submit(graph_lock_query)
            time.sleep(0.05)  # let the worker pick it up and block
            queued = service.submit(graph_lock_query)
            with pytest.raises(ServiceOverloadError):
                service.submit(graph_lock_query)
        assert blocked.result(timeout=10).status == OK
        assert queued.result(timeout=10).status == OK
        assert service.metrics.snapshot().rejected == 1
    finally:
        release.set()
        service.close()


def test_expired_deadline_skips_execution(engine):
    service = QueryService(engine, max_in_flight=1)
    try:
        with service.session.execution_lock:
            # The worker blocks on this one...
            running = service.submit(KNOWS)
            # ...so this one waits in the queue past its deadline.
            stale = service.submit(KNOWS, timeout=0.01)
            time.sleep(0.1)
        assert running.result(timeout=10).status == OK
        served = stale.result(timeout=10)
        assert served.status == FAILED
        assert "timed out" in served.detail
        assert served.result is None
    finally:
        service.close()


def test_default_timeout_is_applied(engine):
    service = QueryService(engine, max_in_flight=1, default_timeout=0.0)
    try:
        with service.session.execution_lock:
            first = service.submit(KNOWS)   # deadline already expired
            time.sleep(0.05)
        assert first.result(timeout=10).status == FAILED
    finally:
        service.close()


def test_metrics_snapshot_counts_and_percentiles(service):
    for _ in range(4):
        service.query(KNOWS)
    snap = service.metrics.snapshot()
    assert snap.submitted == 4 and snap.served == 4 and snap.failed == 0
    assert snap.throughput_qps > 0
    assert set(snap.latency_percentiles) == {"p50", "p95", "p99"}
    assert snap.latency_percentiles["p50"] <= snap.latency_percentiles["p99"]
    assert snap.result_cache_hit_rate == pytest.approx(0.75)
    summary = snap.summary()
    assert "latency_p95" in summary and "queue_wait_p99" in summary


def test_caches_can_be_disabled(engine):
    with QueryService(engine, enable_plan_cache=False,
                      enable_result_cache=False) as service:
        first = service.query(KNOWS)
        second = service.query(KNOWS)
        assert first.plan_cache_hit is None and first.result_cache_hit is None
        assert second.plan_cache_hit is None and second.result_cache_hit is None
        assert second.result.relation == first.result.relation


def test_closed_service_rejects_submissions(engine):
    service = QueryService(engine)
    service.close()
    with pytest.raises(ServiceError):
        service.submit(KNOWS)
    service.close()  # idempotent


def test_close_drains_queued_queries(engine):
    service = QueryService(engine, max_in_flight=1)
    futures = [service.submit(KNOWS) for _ in range(5)]
    service.close()
    assert all(f.result(timeout=10).status == OK for f in futures)


def test_non_optimizing_engine_is_served(small_labeled_graph):
    with DistMuRA(small_labeled_graph, optimize=False) as engine:
        with QueryService(engine) as service:
            served = service.query(KNOWS)
            assert served.status == OK and served.rows > 0
            again = service.query(KNOWS)
            # No plan cache without optimization, but results still memoize.
            assert again.plan_cache_hit is None
            assert again.result_cache_hit is True
