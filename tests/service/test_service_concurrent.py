"""Concurrent differential test of the serving layer (acceptance bar).

N client threads replay a mixed workload through one shared
:class:`QueryService` with both caches enabled, with database mutations
interleaved between replay rounds.  Every served result must be identical
to what a *fresh, single-threaded* :class:`DistMuRA` session computes for
the same query on the database state of that round — i.e. the scheduler,
the caches and the invalidation machinery are not allowed to change any
answer, only to change how fast it arrives.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import DistMuRA, QueryService
from repro.service import OK

QUERIES = (
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
    "?x,?y <- ?x knows+/livesIn ?y",
    "?x,?y <- ?x (knows|worksAt)+ ?y",
    "?x <- alice knows+/worksAt ?x",
    "?x,?y <- ?x isLocatedIn+ ?y",
)

#: (label, (src, trg)) mutations applied between replay rounds.
MUTATIONS = (
    ("add", "knows", (("dave", "erin"), ("erin", "alice"))),
    ("add", "worksAt", (("carol", "cnrs"),)),
    ("remove", "knows", (("erin", "alice"),)),
)

NUM_CLIENTS = 4
REPLAYS_PER_CLIENT = 12


def replay_round(service, rng_seed):
    """Replay a shuffled query mix from NUM_CLIENTS threads; return results."""
    rng = random.Random(rng_seed)
    outcomes: dict[int, list] = {}
    errors: list[BaseException] = []

    def client(client_id: int) -> None:
        local = [rng_queries[client_id][i]
                 for i in range(REPLAYS_PER_CLIENT)]
        try:
            outcomes[client_id] = [
                (text, service.query(text)) for text in local]
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    rng_queries = {
        client_id: [rng.choice(QUERIES) for _ in range(REPLAYS_PER_CLIENT)]
        for client_id in range(NUM_CLIENTS)
    }
    threads = [threading.Thread(target=client, args=(client_id,))
               for client_id in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return [pair for client_id in sorted(outcomes)
            for pair in outcomes[client_id]]


def reference_answers(database):
    """Fresh single-threaded engine per query on a database snapshot."""
    answers = {}
    for text in QUERIES:
        with DistMuRA(dict(database), num_workers=2) as fresh:
            answers[text] = fresh.query(text).relation
    return answers


@pytest.mark.parametrize("executor", ["serial", "threads"])
def test_concurrent_replay_with_mutations_is_differential(
        small_labeled_graph, executor):
    with DistMuRA(small_labeled_graph, num_workers=2,
                  executor=executor) as engine:
        with QueryService(engine, max_in_flight=NUM_CLIENTS,
                          queue_capacity=NUM_CLIENTS * REPLAYS_PER_CLIENT) \
                as service:
            for round_index, mutation in enumerate((None,) + MUTATIONS):
                if mutation is not None:
                    kind, label, pairs = mutation
                    if kind == "add":
                        service.add_edges(label, pairs)
                    else:
                        service.remove_edges(label, pairs)
                served = replay_round(service, rng_seed=100 + round_index)
                expected = reference_answers(engine.database)
                for text, outcome in served:
                    assert outcome.status == OK, (text, outcome.detail)
                    assert outcome.result.relation == expected[text], (
                        f"round {round_index}: {text} diverged from the "
                        f"fresh single-threaded evaluation")
            snap = service.metrics.snapshot()
            rounds = 1 + len(MUTATIONS)
            assert snap.served == rounds * NUM_CLIENTS * REPLAYS_PER_CLIENT
            # The replay repeats queries heavily: caches must actually engage.
            assert snap.result_cache_hit_rate > 0.5
            assert snap.plan_cache_hit_rate > 0.5
