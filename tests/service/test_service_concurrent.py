"""Concurrent differential tests of the serving layer (acceptance bar).

Two acceptance properties:

* **Round-differential** — N client threads replay a mixed workload
  through one shared :class:`QueryService` with both caches enabled,
  with database mutations interleaved between replay rounds.  Every
  served result must be identical to what a *fresh, single-threaded*
  :class:`DistMuRA` session computes for the same query on the database
  state of that round.
* **Per-snapshot differential** — N reader threads run *while* a writer
  commits (no barriers at all), on two graphs of one session.  Every
  read pins some snapshot; replaying its query single-threaded against
  exactly that snapshot must reproduce the answer bit for bit.  The
  scheduler, the version-keyed caches and the lock-free plan phase are
  not allowed to change any answer, only how fast it arrives.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import DistMuRA, LabeledGraph, QueryService, Session
from repro.service import OK

QUERIES = (
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
    "?x,?y <- ?x knows+/livesIn ?y",
    "?x,?y <- ?x (knows|worksAt)+ ?y",
    "?x <- alice knows+/worksAt ?x",
    "?x,?y <- ?x isLocatedIn+ ?y",
)

#: (label, (src, trg)) mutations applied between replay rounds.
MUTATIONS = (
    ("add", "knows", (("dave", "erin"), ("erin", "alice"))),
    ("add", "worksAt", (("carol", "cnrs"),)),
    ("remove", "knows", (("erin", "alice"),)),
)

NUM_CLIENTS = 4
REPLAYS_PER_CLIENT = 12


def replay_round(service, rng_seed):
    """Replay a shuffled query mix from NUM_CLIENTS threads; return results."""
    rng = random.Random(rng_seed)
    outcomes: dict[int, list] = {}
    errors: list[BaseException] = []

    def client(client_id: int) -> None:
        local = [rng_queries[client_id][i]
                 for i in range(REPLAYS_PER_CLIENT)]
        try:
            outcomes[client_id] = [
                (text, service.query(text)) for text in local]
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    rng_queries = {
        client_id: [rng.choice(QUERIES) for _ in range(REPLAYS_PER_CLIENT)]
        for client_id in range(NUM_CLIENTS)
    }
    threads = [threading.Thread(target=client, args=(client_id,))
               for client_id in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return [pair for client_id in sorted(outcomes)
            for pair in outcomes[client_id]]


def reference_answers(database):
    """Fresh single-threaded engine per query on a database snapshot."""
    answers = {}
    for text in QUERIES:
        with DistMuRA(dict(database), num_workers=2) as fresh:
            answers[text] = fresh.query(text).relation
    return answers


@pytest.mark.parametrize("executor", ["serial", "threads"])
def test_concurrent_replay_with_mutations_is_differential(
        small_labeled_graph, executor):
    with DistMuRA(small_labeled_graph, num_workers=2,
                  executor=executor) as engine:
        with QueryService(engine, max_in_flight=NUM_CLIENTS,
                          queue_capacity=NUM_CLIENTS * REPLAYS_PER_CLIENT) \
                as service:
            for round_index, mutation in enumerate((None,) + MUTATIONS):
                if mutation is not None:
                    kind, label, pairs = mutation
                    if kind == "add":
                        service.add_edges(label, pairs)
                    else:
                        service.remove_edges(label, pairs)
                served = replay_round(service, rng_seed=100 + round_index)
                expected = reference_answers(engine.database)
                for text, outcome in served:
                    assert outcome.status == OK, (text, outcome.detail)
                    assert outcome.result.relation == expected[text], (
                        f"round {round_index}: {text} diverged from the "
                        f"fresh single-threaded evaluation")
            snap = service.metrics.snapshot()
            rounds = 1 + len(MUTATIONS)
            assert snap.served == rounds * NUM_CLIENTS * REPLAYS_PER_CLIENT
            # The replay repeats queries heavily: caches must actually engage.
            assert snap.result_cache_hit_rate > 0.5
            assert snap.plan_cache_hit_rate > 0.5


def second_graph() -> LabeledGraph:
    """A small two-label graph distinct from the fixture graph."""
    graph = LabeledGraph(name="second")
    for index in range(6):
        graph.add_edge(f"s{index}", "knows", f"s{index + 1}")
    graph.add_edge("s0", "livesIn", "town")
    graph.add_edge("town", "isLocatedIn", "europe")
    graph.add_edge("s3", "worksAt", "lab")
    return graph


def test_concurrent_mutations_match_per_snapshot_replays(small_labeled_graph):
    """Readers and a writer with no synchronization, on two graphs of one
    session: every collected answer must equal a fresh single-threaded
    replay against the exact snapshot the handle pinned."""
    reader_queries = QUERIES[:4]
    records: dict[int, list] = {}
    errors: list[BaseException] = []
    with Session(small_labeled_graph, num_workers=2,
                 executor="threads") as session:
        session.attach("second", second_graph())
        scopes = {"default": session, "second": session.graph("second")}

        def reader(reader_id: int) -> None:
            rng = random.Random(1000 + reader_id)
            rows = records[reader_id] = []
            try:
                for _ in range(8):
                    name = rng.choice(tuple(scopes))
                    text = rng.choice(reader_queries)
                    handle = scopes[name].ucrpq(text)
                    relation = handle.collect().relation
                    rows.append((name, text, handle.pinned_snapshot, relation))
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        def writer() -> None:
            try:
                for index in range(6):
                    session.add_edges(
                        "knows", [(f"w{index}", f"w{index + 1}")])
                    with scopes["second"].transaction() as txn:
                        txn.add_edges("knows", [(f"v{index}", f"v{index + 1}")])
                        txn.add_edges("worksAt", [(f"v{index}", "lab")])
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(reader_id,))
                   for reader_id in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        # Writers really interleaved with the reads.
        assert session.database_version == 6
        assert scopes["second"].database_version == 6

        seen_versions = set()
        replayed = {}
        for rows in records.values():
            for name, text, snapshot, relation in rows:
                assert snapshot is not None
                seen_versions.add((name, snapshot.version))
                key = (id(snapshot), text)
                if key not in replayed:
                    with Session(dict(snapshot), num_workers=2) as fresh:
                        replayed[key] = fresh.ucrpq(text).collect().relation
                assert replayed[key] == relation, (
                    f"{name}@v{snapshot.version}: {text} diverged from the "
                    f"single-threaded replay of its pinned snapshot")
        assert len(records) == 3 and all(len(r) == 8 for r in records.values())


def test_service_serves_multiple_graphs(small_labeled_graph):
    """One service instance scopes requests and mutations per graph."""
    with Session(small_labeled_graph, num_workers=2) as session:
        session.attach("second", second_graph())
        with QueryService(session, max_in_flight=2) as service:
            text = "?x,?y <- ?x knows+ ?y"
            default = service.submit(text, block=True).result(timeout=30)
            second = service.submit(text, block=True,
                                    graph="second").result(timeout=30)
            assert default.status == OK and second.status == OK
            assert second.graph == "second"
            assert default.rows != second.rows
            service.add_edges("knows", [("zz1", "zz2")], graph="second")
            after = service.submit(text, block=True,
                                   graph="second").result(timeout=30)
            assert after.rows == second.rows + 1
            # The default graph's head and caches were untouched.
            replay = service.submit(text, block=True).result(timeout=30)
            assert replay.rows == default.rows
            assert replay.result_cache_hit is True
            by_graph = service.metrics.snapshot().served_by_graph
            assert by_graph["default"] == 2 and by_graph["second"] == 2
            # A pre-built handle scoped to one graph cannot be served
            # under another graph's name (wrong-dataset protection).
            foreign = session.ucrpq(text)  # default-graph handle
            mismatch = service.submit(foreign, block=True,
                                      graph="second").result(timeout=30)
            assert mismatch.status == "failed"
            assert "scoped to graph" in mismatch.detail
            # The right graph name (or none) still serves it fine, and a
            # scoped handle submitted without graph= is attributed to the
            # graph it actually served.
            ok = service.submit(session.graph("second").ucrpq(text),
                                block=True, graph="second").result(timeout=30)
            assert ok.status == OK and ok.rows == after.rows
            bare = service.submit(session.graph("second").ucrpq(text),
                                  block=True).result(timeout=30)
            assert bare.status == OK and bare.graph == "second"
            assert service.metrics.snapshot().served_by_graph["second"] == 4
