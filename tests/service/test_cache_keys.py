"""Service-side and session-side cache keys agree for every input form.

Regression test for the pre-Session duplication: ``QueryService`` used to
re-implement its own prepare/canonicalization path (``_prepare`` /
``_query_text``), so a drift between it and the engine pipeline could
silently split the plan cache.  Both now funnel into
``Session.resolve_plan``; one query submitted as text, as a parsed AST,
as a raw term, or planned directly on the session must land on one plan
cache entry.
"""

from __future__ import annotations

import pytest

from repro import QueryService, Session

TEXT = "?x,?y <- ?x knows+ ?y"


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


def test_str_ucrpq_and_term_share_one_plan_entry(session):
    with QueryService(session, max_in_flight=1) as service:
        parsed = session.parse(TEXT)
        term = session.ucrpq(TEXT).term
        as_text = service.submit(TEXT, block=True).result()
        assert as_text.plan_cache_hit is False
        assert len(service.plan_cache) == 1
        as_ast = service.submit(parsed, block=True).result()
        assert as_ast.plan_cache_hit is True
        as_term = service.submit(term, block=True).result()
        assert as_term.plan_cache_hit is True
        assert len(service.plan_cache) == 1
        rows = {tuple(sorted(r.result.relation.rows))
                for r in (as_text, as_ast, as_term)}
        assert len(rows) == 1


def test_engine_side_plan_agrees_with_service_side(session):
    with QueryService(session, max_in_flight=1) as service:
        service.submit(TEXT, block=True).result()
        # The same query planned directly on the session (embedded use)
        # hits the entry the service created: one pipeline, one key space.
        handle = session.ucrpq(TEXT)
        handle.plan()
        assert handle.last_plan_cache_hit is True
        assert len(service.plan_cache) == 1


def test_canonical_identity_is_front_end_independent(session):
    by_text = session.ucrpq(TEXT)
    by_ast = session.ucrpq(session.parse(TEXT))
    by_builder = session.relation("knows").closure().between("?x", "?y")
    assert by_text.cache_key == by_ast.cache_key == by_builder.cache_key


def test_foreign_handle_fails_its_future_not_the_worker(session,
                                                        small_labeled_graph):
    """A bad submission resolves as failed instead of killing the worker."""
    from repro import Session
    with Session(small_labeled_graph) as other:
        foreign = other.ucrpq(TEXT)
        with QueryService(session, max_in_flight=1) as service:
            served = service.submit(foreign, block=True).result(timeout=30)
            assert served.status == "failed"
            assert "different session" in served.detail
            # The (single) worker is still alive and serves the next query.
            ok = service.submit(TEXT, block=True).result(timeout=30)
            assert ok.status == "ok"


def test_submitted_handle_keeps_its_own_strategy(session):
    """service.submit(handle) honors the handle's default strategy."""
    from repro import PGLD
    handle = session.ucrpq(TEXT, strategy=PGLD)
    with QueryService(session, max_in_flight=1) as service:
        served = service.submit(handle, block=True).result(timeout=30)
        assert served.status == "ok"
        # Pgld is the global driver loop: it iterates globally, never locally.
        assert served.result.metrics.global_iterations >= 1
        assert served.result.metrics.local_iterations == 0


def test_submitted_prepared_binding_shares_the_template_plan(session):
    """Prepared bindings served through the service still plan once."""
    explores = []
    original = session.rewriter.explore

    def counting_explore(*args, **kwargs):
        explores.append(1)
        return original(*args, **kwargs)

    session.rewriter.explore = counting_explore
    prepared = session.prepare("?y <- :start knows+ ?y")
    with QueryService(session, max_in_flight=1) as service:
        for start in ("alice", "bob", "carol"):
            served = service.submit(prepared.bind(start=start),
                                    block=True).result(timeout=30)
            assert served.status == "ok"
    assert explores == [1]
