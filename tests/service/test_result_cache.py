"""Result cache: memoization under snapshot-fingerprint-qualified keys."""

from __future__ import annotations

from repro.algebra.variables import free_variables
from repro.engine import DistMuRA
from repro.query.parser import parse_query
from repro.rewriter.normalize import cache_key
from repro.service import ResultCache, ResultKey


def make_engine(graph):
    return DistMuRA(graph, num_workers=2)


def key_of(engine, result, snapshot=None):
    snapshot = snapshot if snapshot is not None else engine.snapshot()
    deps = free_variables(result.selected_plan)
    return ResultKey(plan_key=cache_key(result.selected_plan),
                     strategy=engine.strategy,
                     num_workers=engine.cluster.num_workers,
                     memory_per_task=engine.memory_per_task,
                     fingerprint=snapshot.fingerprint(deps))


def run_and_store(engine, cache, text, snapshot=None):
    term = engine.translate(parse_query(text))
    result = engine.execute_term(term)
    key = key_of(engine, result, snapshot)
    cache.store(key, result)
    return key, result


def test_lookup_returns_memoized_result(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert cache.lookup(key) is result
    stats = cache.stats
    assert stats.hits == 1 and stats.misses == 0


def test_mutation_of_dependency_changes_the_key(small_labeled_graph):
    """A head query after a commit misses (new fingerprint, new key)."""
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    old_snapshot = engine.snapshot()
    key, result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("knows", [("dave", "erin")])
    new_key = key_of(engine, result)
    assert new_key != key
    assert cache.lookup(new_key) is None
    # The old entry is NOT purged: a reader pinned to the old snapshot
    # rebuilds the same key from its fingerprint and still hits.
    assert key_of(engine, result, old_snapshot) == key
    assert cache.lookup(key) is result


def test_mutation_of_unrelated_relation_keeps_the_key(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("worksAt", [("erin", "cnrs")])
    # The fingerprint only covers the plan's inputs: same key, still hits.
    assert key_of(engine, result) == key
    assert cache.lookup(key) is result


def test_entries_for_both_versions_coexist(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    old_key, old_result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("knows", [("dave", "erin")])
    new_key, new_result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert new_key != old_key
    assert cache.lookup(old_key) is old_result
    assert cache.lookup(new_key) is new_result
    assert len(new_result.relation) > len(old_result.relation)


def test_superseded_entries_age_out_of_the_lru(small_labeled_graph):
    """Stale versions are reclaimed by LRU pressure, not by purges."""
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=2)
    first_key, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    for edge in (("d1", "e1"), ("d2", "e2")):
        engine.add_edges("knows", [edge])
        run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert len(cache) == 2
    assert cache.lookup(first_key) is None
    assert cache.stats.evictions == 1
