"""Result cache: memoization under snapshot-fingerprint-qualified keys."""

from __future__ import annotations

from repro.algebra.variables import free_variables
from repro.engine import DistMuRA
from repro.query.parser import parse_query
from repro.rewriter.normalize import cache_key
from repro.service import ResultCache, ResultKey


def make_engine(graph):
    return DistMuRA(graph, num_workers=2)


def key_of(engine, result, snapshot=None):
    snapshot = snapshot if snapshot is not None else engine.snapshot()
    deps = free_variables(result.selected_plan)
    return ResultKey(plan_key=cache_key(result.selected_plan),
                     strategy=engine.strategy,
                     num_workers=engine.cluster.num_workers,
                     memory_per_task=engine.memory_per_task,
                     fingerprint=snapshot.fingerprint(deps),
                     graph=snapshot.graph_name)


def run_and_store(engine, cache, text, snapshot=None):
    term = engine.translate(parse_query(text))
    result = engine.execute_term(term)
    key = key_of(engine, result, snapshot)
    cache.store(key, result)
    return key, result


def test_lookup_returns_memoized_result(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert cache.lookup(key) is result
    stats = cache.stats
    assert stats.hits == 1 and stats.misses == 0


def test_mutation_of_dependency_changes_the_key(small_labeled_graph):
    """A head query after a commit misses (new fingerprint, new key)."""
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    old_snapshot = engine.snapshot()
    key, result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("knows", [("dave", "erin")])
    new_key = key_of(engine, result)
    assert new_key != key
    assert cache.lookup(new_key) is None
    # The old entry is NOT purged: a reader pinned to the old snapshot
    # rebuilds the same key from its fingerprint and still hits.
    assert key_of(engine, result, old_snapshot) == key
    assert cache.lookup(key) is result


def test_mutation_of_unrelated_relation_keeps_the_key(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("worksAt", [("erin", "cnrs")])
    # The fingerprint only covers the plan's inputs: same key, still hits.
    assert key_of(engine, result) == key
    assert cache.lookup(key) is result


def test_entries_for_both_versions_coexist(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    old_key, old_result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("knows", [("dave", "erin")])
    new_key, new_result = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert new_key != old_key
    assert cache.lookup(old_key) is old_result
    assert cache.lookup(new_key) is new_result
    assert len(new_result.relation) > len(old_result.relation)


def test_keys_are_graph_qualified(small_labeled_graph):
    """Same plan, same fingerprint, different graph => different keys.

    Two freshly attached graphs with the same relation names sit at the
    same versions, so the fingerprint alone cannot tell them apart; the
    ``graph`` field must."""
    engine = make_engine(small_labeled_graph)
    key, result = run_and_store(engine, ResultCache(8),
                                "?x,?y <- ?x knows+ ?y")
    twin = engine.snapshot().relabeled("twin")
    twin_key = key_of(engine, result, twin)
    assert twin.fingerprint(("knows",)) == engine.snapshot().fingerprint(
        ("knows",))
    assert twin_key != key
    assert twin_key.graph == "twin" and key.graph == engine.snapshot().graph_name


def test_shared_cache_never_serves_rows_across_graphs(small_labeled_graph):
    """Regression: ``ResultKey`` omitted the graph identity.

    Two graphs with identical relation names at identical versions
    produced identical keys, so a deployment sharing one result cache
    across graphs (one memory budget for all tenants) served graph A's
    memoized rows to the same query on graph B.  With graph-qualified
    keys each graph hits only its own entries."""
    from repro import Session
    from repro.data.graph import LabeledGraph

    other = LabeledGraph(name="other")
    other.add_edges([("x1", "knows", "x2"),
                     ("alice", "livesIn", "grenoble"),
                     ("grenoble", "isLocatedIn", "france"),
                     ("alice", "worksAt", "inria")])
    text = "?x,?y <- ?x knows+ ?y"
    with Session(small_labeled_graph, num_workers=2) as session:
        session.attach("other", other)
        shared = ResultCache(capacity=8)
        session.result_cache = shared
        session.graph("other").result_cache = shared
        rows_a = session.ucrpq(text).collect().relation
        query_b = session.graph("other").ucrpq(text)
        rows_b = query_b.collect().relation
        # Before the fix the second query *hit* graph A's entry and
        # returned A's transitive closure; B has exactly one knows-pair.
        assert query_b.last_result_cache_hit is False
        assert rows_b != rows_a
        assert set(rows_b.to_pairs("x", "y")) == {("x1", "x2")}
        # Both entries coexist in the one shared cache, keyed apart.
        assert len(shared) == 2


def test_superseded_entries_age_out_of_the_lru(small_labeled_graph):
    """Stale versions are reclaimed by LRU pressure, not by purges."""
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=2)
    first_key, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    for edge in (("d1", "e1"), ("d2", "e2")):
        engine.add_edges("knows", [edge])
        run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert len(cache) == 2
    assert cache.lookup(first_key) is None
    assert cache.stats.evictions == 1
