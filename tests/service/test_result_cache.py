"""Result cache: memoization, version-checked validity, invalidation."""

from __future__ import annotations

from repro.algebra.variables import free_variables
from repro.engine import DistMuRA
from repro.query.parser import parse_query
from repro.rewriter.normalize import cache_key
from repro.service import ResultCache, ResultKey


def make_engine(graph):
    return DistMuRA(graph, num_workers=2)


def run_and_store(engine, cache, text):
    term = engine.translate(parse_query(text))
    result = engine.execute_term(term)
    deps = free_variables(result.selected_plan)
    key = ResultKey(plan_key=cache_key(result.selected_plan),
                    strategy=engine.strategy,
                    num_workers=engine.cluster.num_workers,
                    memory_per_task=engine.memory_per_task)
    cache.store(key, result, deps, engine)
    return key, result, deps


def test_lookup_returns_memoized_result(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, result, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert cache.lookup(key, engine) is result
    stats = cache.stats
    assert stats.hits == 1 and stats.misses == 0


def test_mutation_of_dependency_invalidates_on_lookup(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, _, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("knows", [("dave", "erin")])
    assert cache.lookup(key, engine) is None
    stats = cache.stats
    # The stale entry counts as a miss plus an invalidation, never a hit.
    assert stats.hits == 0 and stats.misses == 1 and stats.invalidations == 1
    assert len(cache) == 0


def test_mutation_of_unrelated_relation_keeps_entry(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, result, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("worksAt", [("erin", "cnrs")])
    assert cache.lookup(key, engine) is result


def test_eager_invalidate_relations_purges_dependents(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    knows_key, _, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    lives_key, lives_result, _ = run_and_store(engine, cache,
                                               "?x <- ?x livesIn ?y")
    dropped = cache.invalidate_relations(("knows",))
    assert dropped == 1
    assert cache.lookup(knows_key, engine) is None
    assert cache.lookup(lives_key, engine) is lives_result


def test_restore_after_mutation_hits_again(small_labeled_graph):
    engine = make_engine(small_labeled_graph)
    cache = ResultCache(capacity=8)
    key, _, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    engine.add_edges("knows", [("dave", "erin")])
    assert cache.lookup(key, engine) is None
    # Re-executing at the new version re-arms the entry.
    key2, result2, _ = run_and_store(engine, cache, "?x,?y <- ?x knows+ ?y")
    assert key2 == key
    assert cache.lookup(key2, engine) is result2
