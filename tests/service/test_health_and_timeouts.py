"""Satellites: the UNBOUNDED timeout sentinel and the new health fields."""

from __future__ import annotations

import time

import pytest

from repro import QueryService, Session, UNBOUNDED
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import FAILED, OK

KNOWS = "?x,?y <- ?x knows+ ?y"


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture
def session(small_labeled_graph):
    return Session(small_labeled_graph, num_workers=2)


class TestUnboundedSentinel:
    """``timeout=None`` means "use the default"; ``UNBOUNDED`` disables it."""

    def test_none_falls_back_to_the_default_timeout(self, session):
        with QueryService(session, default_timeout=1e-9) as service:
            served = service.submit(KNOWS).result(timeout=10)
            assert served.status == FAILED
            assert served.detail.startswith(("timed out",
                                             "deadline exceeded"))

    def test_unbounded_overrides_the_default_timeout(self, session):
        with QueryService(session, default_timeout=1e-9) as service:
            served = service.submit(KNOWS,
                                    timeout=UNBOUNDED).result(timeout=10)
            assert served.status == OK

    def test_explicit_timeout_still_wins(self, session):
        with QueryService(session, default_timeout=1e-9) as service:
            served = service.submit(KNOWS, timeout=30.0).result(timeout=10)
            assert served.status == OK

    def test_sentinel_repr_and_identity(self):
        assert repr(UNBOUNDED) == "UNBOUNDED"
        from repro.service.server import UNBOUNDED as again
        assert again is UNBOUNDED


class TestHealthFields:
    def test_uptime_is_positive_and_monotone(self, session):
        with QueryService(session) as service:
            first = service.health()["uptime_seconds"]
            assert first > 0
            time.sleep(0.01)
            second = service.health()["uptime_seconds"]
            assert second > first

    def test_queue_high_water_tracks_backlog(self, session):
        with QueryService(session, max_in_flight=1) as service:
            assert service.health()["queue_high_water"] == 0
            futures = [service.submit(f"?x,?y <- ?x knows{'+' * (i % 2)} ?y")
                       for i in range(16)]
            for future in futures:
                future.result(timeout=30)
            assert service.health()["queue_high_water"] >= 1

    def test_health_publishes_prometheus_gauges(self, session):
        from repro.obs.metrics import get_registry
        with QueryService(session) as service:
            service.health()
            text = get_registry().render_prometheus()
        assert "repro_service_uptime_seconds" in text
        assert "repro_service_queue_high_water" in text
