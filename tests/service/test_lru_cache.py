"""LRU cache mechanics that the key-level tests don't cover: falsy
values vs misses, the public MISS sentinel and order-preserving peeks."""

from __future__ import annotations

from repro.service import LRUCache, MISS


def test_cached_none_is_a_hit_not_a_miss():
    """Regression: ``get`` used to signal misses with ``None``, so a
    legitimately cached ``None`` (or any falsy value) was recomputed on
    every call and counted as a miss forever."""
    cache = LRUCache(capacity=4)
    cache.put("k", None)
    assert cache.get("k", MISS) is None
    assert cache.get("absent", MISS) is MISS
    stats = cache.stats
    assert stats.hits == 1 and stats.misses == 1


def test_falsy_values_round_trip():
    cache = LRUCache(capacity=8)
    for key, value in (("zero", 0), ("empty", ()), ("false", False)):
        cache.put(key, value)
    for key, value in (("zero", 0), ("empty", ()), ("false", False)):
        assert cache.get(key, MISS) == value
    assert cache.stats.misses == 0


def test_default_is_returned_on_miss():
    cache = LRUCache(capacity=2)
    assert cache.get("nope") is None
    assert cache.get("nope", default="fallback") == "fallback"


def test_peek_does_not_disturb_lru_order_or_counters():
    cache = LRUCache(capacity=2)
    cache.put("old", 1)
    cache.put("new", 2)
    before = cache.stats
    # A get() would refresh "old"; peek must not, so "old" is still the
    # eviction victim when a third entry arrives.
    assert cache.peek("old") == 1
    assert cache.peek("absent", default=MISS) is MISS
    cache.put("third", 3)
    assert "old" not in cache
    assert "new" in cache and "third" in cache
    after = cache.stats
    assert (after.hits, after.misses) == (before.hits, before.misses)
