"""Incremental view maintenance of cached recursive results.

Every maintained result is checked *differentially* against a cold
recomputation of the same plan on the new head — the maintenance layer
is only allowed to be faster, never different.
"""

from __future__ import annotations

import pytest

from repro import Session
from repro.algebra.terms import Antijoin, Fixpoint, Join, Rename, RelVar, Union
from repro.data.graph import LabeledGraph
from repro.service.view_maintenance import (
    FALLBACK, REDERIVED, RESUMED, SKIPPED_NONMONOTONE, SKIPPED_SHAPE,
    SKIPPED_STALE, ViewMaintainer)

TC = "?x,?y <- ?x knows+ ?y"


def chain_graph(length: int = 40, extra: int = 10, *,
                prefix: str = "n", name: str = "chain") -> LabeledGraph:
    """A knows-chain with some shortcut edges: big enough that the
    default cost threshold accepts single-edge deltas."""
    graph = LabeledGraph(name=name)
    triples = [(f"{prefix}{i}", "knows", f"{prefix}{i + 1}")
               for i in range(length)]
    triples += [(f"{prefix}{i}", "knows", f"{prefix}{i + 5}")
                for i in range(0, extra * 4, 4)]
    triples += [(f"{prefix}0", "worksAt", "lab")]
    graph.add_edges(triples)
    return graph


@pytest.fixture
def session():
    with Session(chain_graph(), num_workers=2) as session:
        yield session


def recompute(session, plan_term):
    """Cold evaluation of the cached plan's term on the current head."""
    return session.execute_term(plan_term, optimize=False).relation


class TestInsertResume:
    def test_resumed_result_equals_recomputation(self, session):
        cached = session.ucrpq(TC).collect()
        session.add_edges("knows", [("n3", "z1"), ("z1", "z2")])
        stats = session.last_maintenance
        assert stats.resumed == 1 and stats.maintained == 1
        fresh = session.ucrpq(TC)
        maintained = fresh.collect().relation
        assert fresh.last_result_cache_hit is True
        assert maintained == recompute(session, cached.selected_plan)

    def test_repeated_commits_keep_maintaining(self, session):
        cached = session.ucrpq(TC).collect()
        for i in range(3):
            session.add_edges("knows", [(f"a{i}", f"b{i}")])
            assert session.last_maintenance.resumed == 1
        fresh = session.ucrpq(TC)
        assert fresh.collect().relation == recompute(
            session, cached.selected_plan)
        assert fresh.last_result_cache_hit is True

    def test_commit_to_unrelated_relation_is_ignored(self, session):
        session.ucrpq(TC).collect()
        session.add_edges("worksAt", [("n9", "lab")])
        stats = session.last_maintenance
        # "worksAt" (and its inverse/facts) are not among the entry's
        # dependencies: nothing is examined, the entry keeps hitting.
        assert stats.examined == 0
        fresh = session.ucrpq(TC)
        fresh.collect()
        assert fresh.last_result_cache_hit is True


class TestDeleteAndRederive:
    def test_dred_result_equals_recomputation(self, session):
        cached = session.ucrpq(TC).collect()
        session.remove_edges("knows", [("n10", "n11")])
        stats = session.last_maintenance
        assert stats.rederived == 1
        fresh = session.ucrpq(TC)
        maintained = fresh.collect().relation
        assert fresh.last_result_cache_hit is True
        assert maintained == recompute(session, cached.selected_plan)

    def test_dred_rederives_alternative_paths(self, session):
        """Removing a shortcut edge must keep every pair the chain still
        derives (the re-derivation half of DRed, where overdeletion
        alone would over-remove)."""
        session.add_edges("knows", [("n10", "n13")])  # shortcut over chain
        cached = session.ucrpq(TC).collect()
        session.remove_edges("knows", [("n10", "n13")])
        assert session.last_maintenance.rederived == 1
        fresh = session.ucrpq(TC)
        maintained = fresh.collect().relation
        # Still derivable via n10 -> n11 -> n12 -> n13.
        assert ("n10", "n13") in maintained.to_pairs("x", "y")
        assert maintained == recompute(session, cached.selected_plan)

    def test_mixed_insert_and_delete_in_one_transaction(self, session):
        cached = session.ucrpq(TC).collect()
        with session.transaction() as txn:
            txn.add_edges("knows", [("n40", "w1"), ("w1", "w2")])
            txn.remove_edges("knows", [("n0", "n1")])
        assert session.last_maintenance.rederived == 1
        fresh = session.ucrpq(TC)
        maintained = fresh.collect().relation
        assert fresh.last_result_cache_hit is True
        assert maintained == recompute(session, cached.selected_plan)


class TestFallbackAndSkips:
    def test_large_delta_falls_back_to_recompute(self, session):
        session.ucrpq(TC).collect()
        # Rewrite most of the graph in one commit: far past the delta
        # threshold, incremental maintenance would do full-recompute work.
        session.add_edges("knows", [(f"m{i}", f"m{i + 1}")
                                    for i in range(60)])
        stats = session.last_maintenance
        assert stats.fallbacks == 1 and stats.maintained == 0
        assert stats.decisions[0].action == FALLBACK
        fresh = session.ucrpq(TC)
        result = fresh.collect()
        assert fresh.last_result_cache_hit is False  # normal miss path
        assert ("m0", "m60") in result.relation.to_pairs("x", "y")

    def test_stale_entry_is_skipped_not_mismaintained(self, session):
        """An entry two commits behind must not be resumed across only
        the latest delta (it would silently skip the middle commit)."""
        session.ucrpq(TC).collect()
        session.view_maintenance = "off"
        session.add_edges("knows", [("s1", "s2")])  # entry now 1 behind
        session.view_maintenance = "sync"
        session.add_edges("knows", [("s2", "s3")])
        stats = session.last_maintenance
        assert stats.skipped == 1
        assert stats.decisions[0].action == SKIPPED_STALE
        fresh = session.ucrpq(TC)
        result = fresh.collect()
        assert fresh.last_result_cache_hit is False
        assert ("s1", "s3") in result.relation.to_pairs("x", "y")

    def test_non_fixpoint_plans_are_left_to_the_miss_path(self, session):
        session.ucrpq("?x,?y <- ?x knows ?y").collect()  # no recursion
        session.add_edges("knows", [("q1", "q2")])
        stats = session.last_maintenance
        assert stats.maintained == 0
        assert all(d.action == SKIPPED_SHAPE for d in stats.decisions)
        fresh = session.ucrpq("?x,?y <- ?x knows ?y")
        result = fresh.collect()
        assert ("q1", "q2") in result.relation.to_pairs("x", "y")

    def test_touched_antijoin_right_is_nonmonotone_and_skipped(self):
        """Insertions into an antijoin's right side can *shrink* the
        fixpoint, so neither resume nor DRed applies: the maintainer
        must refuse and let the next query recompute."""
        graph = LabeledGraph(name="blocked")
        graph.add_edges([(f"n{i}", "knows", f"n{i + 1}") for i in range(30)]
                        + [("x", "blocked", "y")])
        # mu(X = knows U antiproj(rho(X) |> blocked ... )) hand-built:
        # reachable pairs whose endpoints are not directly "blocked".
        step = Rename("trg", "mid", RelVar("X"))
        via = Rename("src", "mid", RelVar("knows"))
        from repro.algebra.terms import AntiProject
        recurse = AntiProject(("mid",), Join(step, via))
        body = Union(RelVar("knows"),
                     Antijoin(recurse, RelVar("blocked")))
        term = Fixpoint("X", body)
        with Session(graph, num_workers=2, optimize=False) as session:
            session.term(term).collect()
            session.add_edges("blocked", [("n0", "n2")])
            stats = session.last_maintenance
            assert stats.maintained == 0
            assert any(d.action == SKIPPED_NONMONOTONE
                       for d in stats.decisions)
            fresh = session.term(term)
            fresh.collect()
            assert fresh.last_result_cache_hit is False


class TestModesAndScoping:
    def test_async_mode_maintains_on_the_background_worker(self):
        with Session(chain_graph(), num_workers=2,
                     view_maintenance="async") as session:
            cached = session.ucrpq(TC).collect()
            session.add_edges("knows", [("n5", "y1")])
            # Drain the single-threaded background worker: once this
            # no-op action runs, the maintenance task before it is done.
            session.submit_action(lambda: None).result(timeout=10)
            assert session.last_maintenance.resumed == 1
            fresh = session.ucrpq(TC)
            maintained = fresh.collect().relation
            assert fresh.last_result_cache_hit is True
            assert maintained == recompute(session, cached.selected_plan)

    def test_invalid_mode_is_rejected(self):
        with pytest.raises(Exception):
            Session(chain_graph(), view_maintenance="eager")

    def test_commits_maintain_only_their_own_graph(self, session):
        # Same shape as the "chain" fixture (plan selection is stable
        # under one-edge deltas at this size), different node names.
        other = chain_graph(prefix="p", name="other")
        session.attach("other", other)
        session.ucrpq(TC).collect()
        view = session.graph("other")
        cached_b = view.ucrpq(TC).collect()
        view.add_edges("knows", [("p3", "pz")])
        stats = session.last_maintenance
        assert stats.resumed == 1
        assert all(d.graph == "other" for d in stats.decisions)
        fresh_b = view.ucrpq(TC)
        assert fresh_b.collect().relation == recompute(
            view, cached_b.selected_plan)
        assert fresh_b.last_result_cache_hit is True
        # Graph A's entry was untouched and still hits at its version.
        fresh_a = session.ucrpq(TC)
        fresh_a.collect()
        assert fresh_a.last_result_cache_hit is True

    def test_custom_maintainer_threshold_is_honoured(self):
        graph = LabeledGraph(name="tiny")
        graph.add_edges([("a", "knows", "b"), ("b", "knows", "c")])
        with Session(graph, num_workers=2) as session:
            session.view_maintainer = ViewMaintainer(delta_threshold=1.0)
            cached = session.ucrpq(TC).collect()
            session.remove_edges("knows", [("a", "b")])
            assert session.last_maintenance.rederived == 1
            fresh = session.ucrpq(TC)
            assert fresh.collect().relation == recompute(
                session, cached.selected_plan)


class TestPromote:
    def test_promote_rejects_plan_identity_changes(self, session):
        from dataclasses import replace

        from repro.service import ResultCache
        cached = session.ucrpq(TC).collect()
        cache = session.result_cache
        (key, result), = [(k, v) for k, v in cache.entries()]
        with pytest.raises(ValueError):
            cache.promote(key, replace(key, plan_key="other"), result)
        assert cached is result

    def test_promote_keeps_the_superseded_entry(self, session):
        old_view = session.read_view()
        before = session.ucrpq(TC).collect()
        session.add_edges("knows", [("n7", "v1")])
        assert session.last_maintenance.resumed == 1
        # Pinned reader still hits the pre-commit entry verbatim.
        old_reader = old_view.ucrpq(TC)
        assert old_reader.collect().relation == before.relation
        assert old_reader.last_result_cache_hit is True
