"""Plan cache: LRU bounds, counters, key construction and stability."""

from __future__ import annotations

from repro.engine import DistMuRA
from repro.query.parser import parse_query
from repro.rewriter.normalize import cache_key
from repro.service import CachedPlan, LRUCache, PlanCache, PlanKey
from repro.algebra.variables import free_variables

QUERY = "?x,?y <- ?x knows+ ?y"


def make_key(engine, text, strategy=None):
    term = engine.translate(parse_query(text))
    return PlanKey.of(engine, term, free_variables(term), strategy), term


def make_plan(term):
    return CachedPlan(term=term, cost=1.0, plans_explored=3,
                      dependencies=free_variables(term))


class TestLRUCache:
    def test_eviction_order_and_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes 'a': 'b' becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats
        assert stats.evictions == 1
        assert stats.hits == 3 and stats.misses == 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_put_refreshes_existing_key_without_evicting(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0


class TestPlanCache:
    def test_roundtrip_and_hit_miss_counters(self, small_labeled_graph):
        engine = DistMuRA(small_labeled_graph)
        cache = PlanCache(capacity=8)
        key, term = make_key(engine, QUERY)
        assert cache.get(key) is None
        cache.put(key, make_plan(term))
        cached = cache.get(key)
        assert cached is not None and cached.term == term
        stats = cache.stats
        assert stats.misses == 1 and stats.hits == 1

    def test_key_depends_on_strategy_and_versions(self, small_labeled_graph):
        engine = DistMuRA(small_labeled_graph)
        key_auto, _ = make_key(engine, QUERY)
        key_pgld, _ = make_key(engine, QUERY, strategy="pgld")
        assert key_auto != key_pgld
        engine.add_edges("knows", [("zoe", "alice")])
        key_after, _ = make_key(engine, QUERY)
        assert key_after != key_auto
        # A query over untouched relations keeps its key.
        other_before, _ = make_key(engine, "?x <- ?x livesIn ?y")
        engine.add_edges("knows", [("yan", "zoe")])
        other_after, _ = make_key(engine, "?x <- ?x livesIn ?y")
        assert other_before == other_after

    def test_same_query_twice_shares_one_key(self, small_labeled_graph):
        """Fresh generated names must not fragment the cache."""
        engine = DistMuRA(small_labeled_graph)
        first, _ = make_key(engine, QUERY)
        second, _ = make_key(engine, QUERY)
        assert first == second

    def test_old_and_new_snapshot_entries_coexist(self, small_labeled_graph):
        """No purge-on-mutation: version-qualified keys simply diverge."""
        engine = DistMuRA(small_labeled_graph)
        cache = PlanCache(capacity=8)
        old_key, old_term = make_key(engine, QUERY)
        cache.put(old_key, make_plan(old_term))
        engine.add_edges("knows", [("zoe", "alice")])
        new_key, new_term = make_key(engine, QUERY)
        assert new_key != old_key
        cache.put(new_key, make_plan(new_term))
        # Both versions are live: a handle pinned to the old snapshot
        # keeps hitting its entry while head queries hit the new one.
        assert len(cache) == 2
        assert cache.get(old_key) is not None
        assert cache.get(new_key) is not None

    def test_lru_bound_evicts_oldest_plan(self, small_labeled_graph):
        engine = DistMuRA(small_labeled_graph)
        cache = PlanCache(capacity=2)
        texts = [QUERY, "?x <- ?x livesIn ?y", "?x,?y <- ?x worksAt ?y"]
        keys = []
        for text in texts:
            key, term = make_key(engine, text)
            cache.put(key, make_plan(term))
            keys.append(key)
        assert len(cache) == 2
        assert cache.get(keys[0]) is None
        assert cache.stats.evictions == 1


def test_cached_plan_with_strategies_is_nondestructive(small_labeled_graph):
    engine = DistMuRA(small_labeled_graph)
    _, term = make_key(engine, QUERY)
    plan = make_plan(term)
    updated = plan.with_strategies(("pplw^s",))
    assert plan.physical_strategies == ()
    assert updated.physical_strategies == ("pplw^s",)
    assert updated.term == plan.term


def test_cache_key_is_a_plain_stable_string(small_labeled_graph):
    engine = DistMuRA(small_labeled_graph)
    term = engine.translate(parse_query(QUERY))
    key = cache_key(term)
    assert isinstance(key, str) and key
    assert cache_key(term) == key
