"""The compatibility facades: correct answers, one warning per call site."""

from __future__ import annotations

import warnings

import pytest

from repro import DistMuRA, QueryService, Session
from repro._compat import reset_deprecation_registry

QUERY = "?x,?y <- ?x edge+ ?y"


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_deprecation_registry()
    yield
    reset_deprecation_registry()


def recorded_deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestDistMuRAFacade:
    def test_query_still_matches_the_session_pipeline(self, seeded_random_graph):
        with Session(seeded_random_graph, num_workers=2) as session:
            expected = session.ucrpq(QUERY).collect().relation
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with DistMuRA(seeded_random_graph, num_workers=2) as engine:
                assert engine.query(QUERY).relation == expected

    def test_warns_exactly_once_per_call_site(self, seeded_random_graph):
        with DistMuRA(seeded_random_graph, num_workers=2) as engine:
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                for _ in range(5):
                    engine.query(QUERY)  # one site, five calls
            assert len(recorded_deprecations(record)) == 1

    def test_distinct_call_sites_each_warn(self, seeded_random_graph):
        with DistMuRA(seeded_random_graph, num_workers=2) as engine:
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                for _ in range(3):
                    engine.query(QUERY)  # first site, three calls
                engine.query(QUERY)      # second site
            assert len(recorded_deprecations(record)) == 2

    def test_facade_is_a_session(self, seeded_random_graph):
        with DistMuRA(seeded_random_graph, num_workers=2) as engine:
            assert isinstance(engine, Session)
            # The lazy front-ends work on the facade without warnings.
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                engine.ucrpq(QUERY).collect()
            assert not recorded_deprecations(record)

    def test_legacy_cache_defaults_are_off(self, seeded_random_graph):
        with DistMuRA(seeded_random_graph, num_workers=2) as engine:
            assert engine.enable_plan_cache is False
            assert engine.enable_result_cache is False
        with Session(seeded_random_graph, num_workers=2) as session:
            assert session.enable_plan_cache is True
            assert session.enable_result_cache is True


class TestQueryServiceFacade:
    def test_query_matches_submit(self, seeded_random_graph):
        with Session(seeded_random_graph, num_workers=2) as session:
            with QueryService(session, max_in_flight=2) as service:
                via_submit = service.submit(QUERY, block=True).result()
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    via_query = service.query(QUERY)
                assert via_query.result.relation == via_submit.result.relation

    def test_warns_exactly_once_per_call_site(self, seeded_random_graph):
        with Session(seeded_random_graph, num_workers=2) as session:
            with QueryService(session, max_in_flight=2) as service:
                with warnings.catch_warnings(record=True) as record:
                    warnings.simplefilter("always")
                    for _ in range(4):
                        service.query(QUERY)
                assert len(recorded_deprecations(record)) == 1
