"""Tests of the dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets import (available_datasets, chain_graph, erdos_renyi_graph,
                            load_dataset, preferential_attachment_graph,
                            random_tree, register_dataset, relabel_for_anbn,
                            social_graph_suite, uniprot_constants,
                            uniprot_graph, yago_like_graph)
from repro.errors import DatasetError


class TestRandomGraphs:
    def test_erdos_renyi_edge_count(self):
        graph = erdos_renyi_graph(100, num_edges=300, seed=1)
        assert graph.edge_count() == 300

    def test_erdos_renyi_is_deterministic(self):
        first = erdos_renyi_graph(50, num_edges=100, seed=42)
        second = erdos_renyi_graph(50, num_edges=100, seed=42)
        assert set(first.iter_triples()) == set(second.iter_triples())

    def test_erdos_renyi_labels(self):
        labels = ("a1", "a2", "a3")
        graph = erdos_renyi_graph(80, num_edges=200, labels=labels, seed=2)
        assert set(graph.labels) <= set(labels)
        assert len(graph.labels) == 3

    def test_probability_and_edges_are_exclusive(self):
        with pytest.raises(DatasetError):
            erdos_renyi_graph(10, edge_probability=0.1, num_edges=5)
        with pytest.raises(DatasetError):
            erdos_renyi_graph(10)

    def test_random_tree_has_n_minus_one_edges(self):
        graph = random_tree(100, seed=3)
        assert graph.edge_count() == 99
        # Every non-root node has exactly one parent.
        edges = graph.edges("edge")
        assert len(edges.column_values("src")) == 99

    def test_chain_graph(self):
        graph = chain_graph(10)
        assert graph.edge_count() == 10
        assert graph.successors(0, "edge") == {1}


class TestKnowledgeGraphs:
    def test_yago_like_contains_required_predicates(self):
        graph = yago_like_graph(scale=60, seed=0)
        for predicate in ("isLocatedIn", "dealsWith", "hasChild", "isMarriedTo",
                          "actedIn", "isConnectedTo", "hasWonPrize", "type"):
            assert graph.edge_count(predicate) > 0, predicate

    def test_yago_like_contains_named_entities(self):
        graph = yago_like_graph(scale=60, seed=0)
        nodes = graph.nodes
        for entity in ("Argentina", "Kevin_Bacon", "Marie_Curie",
                       "Shannon_Airport", "wikicat_Capitals_in_Europe"):
            assert entity in nodes, entity

    def test_yago_location_hierarchy_is_deep(self):
        from repro.algebra import RelVar, closure, evaluate
        graph = yago_like_graph(scale=60, seed=0)
        reachability = evaluate(closure(RelVar("isLocatedIn")), graph.relations())
        # Cities reach continents: at least 3 levels of nesting exist.
        assert len(reachability) > graph.edge_count("isLocatedIn")

    def test_scale_grows_the_graph(self):
        small = yago_like_graph(scale=50, seed=0)
        large = yago_like_graph(scale=200, seed=0)
        assert len(large) > len(small)

    def test_uniprot_contains_schema_predicates(self):
        graph = uniprot_graph(num_edges=1_000, seed=0)
        for predicate in ("int", "enc", "occ", "hKw", "ref", "auth", "pub"):
            assert graph.edge_count(predicate) > 0, predicate

    def test_uniprot_edge_budget_is_respected(self):
        graph = uniprot_graph(num_edges=2_000, seed=0)
        assert 1_500 <= len(graph) <= 2_100

    def test_uniprot_constants_exist_in_graph(self):
        graph = uniprot_graph(num_edges=1_000, seed=0)
        constants = uniprot_constants(graph)
        for name in ("protein", "tissue", "keyword"):
            assert constants[name] in graph.nodes


class TestSocialSuiteAndRegistry:
    def test_suite_contains_expected_graph_names(self):
        suite = social_graph_suite(scale=0.2)
        for name in ("AcTree", "Facebook", "Epinions", "Wikitree"):
            assert name in suite
            assert len(suite[name]) > 0

    def test_relabel_for_anbn(self):
        graph = preferential_attachment_graph(60, seed=1)
        relabelled = relabel_for_anbn(graph, seed=1)
        assert set(relabelled.labels) <= {"a", "b"}
        assert len(relabelled) == len(graph)

    def test_registry_loads_known_datasets(self):
        assert "yago_like_small" in available_datasets()
        graph = load_dataset("rnd_small")
        assert len(graph) > 0

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(DatasetError):
            load_dataset("no-such-dataset")

    def test_registry_accepts_custom_factories(self):
        register_dataset("tiny-chain", lambda: chain_graph(3))
        assert len(load_dataset("tiny-chain")) == 3
