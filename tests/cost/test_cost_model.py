"""Tests of the cardinality estimator, the cost model and plan selection."""

from __future__ import annotations

import pytest

from repro.algebra import (Filter, RelVar, closure, compose, evaluate,
                           schemas_of_database)
from repro.cost import (CardinalityEstimator, CostModel, rank_plans,
                        select_best_plan)
from repro.data import Eq, Relation
from repro.query import parse_query, translate_query
from repro.rewriter import explore_plans


@pytest.fixture
def database(small_labeled_graph):
    return small_labeled_graph.relations()


class TestCardinalityEstimator:
    def test_base_relation_is_exact(self, database):
        estimator = CardinalityEstimator(database)
        assert estimator.cardinality(RelVar("knows")) == len(database["knows"])

    def test_equality_filter_reduces_cardinality(self, database):
        estimator = CardinalityEstimator(database)
        base = estimator.cardinality(RelVar("isLocatedIn"))
        filtered = estimator.cardinality(
            Filter(Eq("src", "grenoble"), RelVar("isLocatedIn")))
        assert 0 < filtered <= base

    def test_union_adds_cardinalities(self, database):
        estimator = CardinalityEstimator(database)
        union = RelVar("knows").union(RelVar("livesIn"))
        assert estimator.cardinality(union) == (
            len(database["knows"]) + len(database["livesIn"]))

    def test_join_uses_distinct_counts(self, database):
        estimator = CardinalityEstimator(database)
        term = compose(RelVar("livesIn"), RelVar("isLocatedIn"))
        estimate = estimator.cardinality(term)
        actual = len(evaluate(term, database))
        # The estimate should be in the right ballpark (within 10x).
        assert estimate <= 10 * max(1, actual) + 10
        assert estimate >= 0

    def test_fixpoint_estimate_at_least_seed(self, database):
        estimator = CardinalityEstimator(database)
        term = closure(RelVar("isLocatedIn"))
        assert estimator.cardinality(term) >= len(database["isLocatedIn"])

    def test_cartesian_product(self):
        left = Relation.from_pairs([(1, 2), (3, 4)], columns=("a", "b"))
        right = Relation.from_pairs([(5, 6)], columns=("c", "d"))
        estimator = CardinalityEstimator({"L": left, "R": right})
        assert estimator.cardinality(RelVar("L").join(RelVar("R"))) == 2

    def test_requires_database_or_catalog(self):
        from repro.errors import CostEstimationError
        with pytest.raises(CostEstimationError):
            CardinalityEstimator()


class TestCostModel:
    def test_cost_is_positive_and_monotone_in_operators(self, database):
        model = CostModel(database=database)
        scan = model.cost(RelVar("knows"))
        filtered = model.cost(Filter(Eq("src", "alice"), RelVar("knows")))
        assert scan > 0
        assert filtered >= scan

    def test_pushed_filter_plan_is_cheaper(self, database):
        # C3-style query: the plan that pushes the source filter into the
        # closure must be estimated cheaper than the filter-on-top plan.
        model = CostModel(database=database)
        fixpoint = closure(RelVar("isLocatedIn"))
        unpushed = Filter(Eq("src", "grenoble"), fixpoint)
        from repro.rewriter import PushFilterIntoFixpoint, RewriteContext
        context = RewriteContext(base_schemas=schemas_of_database(database))
        pushed = PushFilterIntoFixpoint().apply_or_raise(unpushed, context)
        assert model.cost(pushed) < model.cost(unpushed)

    def test_merged_closures_cheaper_than_materialising_both(self, database):
        model = CostModel(database=database)
        term = compose(closure(RelVar("knows")), closure(RelVar("isLocatedIn")))
        from repro.rewriter import MergeClosures, RewriteContext
        context = RewriteContext(base_schemas=schemas_of_database(database))
        merged = MergeClosures().apply_or_raise(term, context)
        assert model.cost(merged) <= model.cost(term) * 2


class TestPlanSelection:
    def test_rank_plans_sorted_by_cost(self, database):
        term = translate_query(parse_query("?x <- grenoble isLocatedIn+ ?x"))
        plans = explore_plans(term, schemas_of_database(database))
        ranked = rank_plans(plans, database=database)
        costs = [plan.cost for plan in ranked]
        assert costs == sorted(costs)

    def test_selected_plan_is_correct(self, database):
        term = translate_query(parse_query("?x <- ?x isLocatedIn+ europe"))
        plans = explore_plans(term, schemas_of_database(database))
        best = select_best_plan(plans, database=database)
        assert evaluate(best.term, database) == evaluate(term, database)

    def test_selection_on_empty_plan_list_raises(self, database):
        from repro.errors import PlanSelectionError
        with pytest.raises(PlanSelectionError):
            select_best_plan([], database=database)

    def test_unrankable_plan_goes_last(self, database):
        good = RelVar("knows")
        bad = RelVar("missing-relation").join(RelVar("also-missing"))
        ranked = rank_plans([bad, good], database=database)
        assert ranked[0].term == good
