"""The metrics registry: instruments, labels, exports, pipeline publication."""

from __future__ import annotations

import json
import threading

import pytest

from repro import Session
from repro.data import LabeledGraph
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_registry, set_registry)


@pytest.fixture
def registry():
    """A private registry installed as the process default for one test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_histogram_exact_count_and_sum_windowed_percentiles(self):
        histogram = Histogram(window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 6          # lifetime-exact
        assert histogram.sum == 21.0         # lifetime-exact
        quantiles = histogram.percentiles((0.5,))
        assert 3.0 <= quantiles[0.5] <= 6.0  # window holds the last 4


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_things_total", graph="g1")
        second = registry.counter("repro_things_total", graph="g1")
        assert first is second

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", graph="g1").inc()
        registry.counter("repro_things_total", graph="g2").inc(2)
        snapshot = registry.snapshot()
        assert snapshot['repro_things_total{graph="g1"}'] == 1
        assert snapshot['repro_things_total{graph="g2"}'] == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_m_total", a="1", b="2")
        b = registry.counter("repro_m_total", b="2", a="1")
        assert a is b

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_thing")

    def test_snapshot_expands_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["repro_latency_seconds_count"] == 1
        assert snapshot["repro_latency_seconds_sum"] == 0.5
        assert "repro_latency_seconds_p50" in snapshot

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")

        def worker() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestExports:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_commits_total", graph="yago").inc(3)
        registry.gauge("repro_snapshot_version", graph="yago").set(7)
        registry.histogram("repro_execution_seconds").observe(0.25)
        text = registry.render_prometheus()
        assert "# TYPE repro_commits_total counter" in text
        assert 'repro_commits_total{graph="yago"} 3' in text
        assert "# TYPE repro_snapshot_version gauge" in text
        assert 'repro_snapshot_version{graph="yago"} 7' in text
        assert "# TYPE repro_execution_seconds histogram" in text
        assert "repro_execution_seconds_count 1" in text
        assert 'repro_execution_seconds{quantile="0.5"} 0.25' in text

    def test_jsonl_export_parses_line_by_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_commits_total", graph="g").inc()
        registry.histogram("repro_execution_seconds").observe(1.0)
        lines = registry.render_jsonl().strip().splitlines()
        entries = [json.loads(line) for line in lines]
        assert {entry["metric"] for entry in entries} == {
            "repro_commits_total", "repro_execution_seconds"}
        counter = next(e for e in entries
                       if e["metric"] == "repro_commits_total")
        assert counter["type"] == "counter"
        assert counter["labels"] == {"graph": "g"}
        assert counter["value"] == 1

    def test_empty_registry_renders_empty(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus() == ""
        assert registry.render_jsonl() == ""

    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


def _chain_graph() -> LabeledGraph:
    graph = LabeledGraph(name="metrics-kg")
    graph.add_edges([(f"n{i}", "knows", f"n{i + 1}") for i in range(6)])
    return graph


class TestPipelinePublication:
    """The instrumented call sites really publish into the registry."""

    def test_execution_commit_and_cache_metrics(self, registry):
        with Session(_chain_graph(), num_workers=2) as session:
            session.ucrpq("?x,?y <- ?x knows+ ?y").collect()
            session.ucrpq("?x,?y <- ?x knows+ ?y").run_once()
            session.add_edges("knows", [("n6", "n7")])
        snapshot = registry.snapshot()
        assert snapshot['repro_executions_total{graph="default"}'] >= 1
        assert snapshot['repro_plan_cache_total{outcome="miss"}'] >= 1
        assert snapshot['repro_plan_cache_total{outcome="hit"}'] >= 1
        assert snapshot['repro_result_cache_total{outcome="hit"}'] >= 1
        assert snapshot['repro_commits_total{graph="default"}'] == 1
        assert snapshot['repro_snapshot_version{graph="default"}'] == 1
        assert snapshot["repro_execution_seconds_count"] >= 1
        # Cluster communication counters ride along with each execution.
        assert snapshot['repro_tasks_launched_total{graph="default"}'] >= 1

    def test_cache_off_publishes_nothing_for_that_cache(self, registry):
        with Session(_chain_graph(), num_workers=2,
                     enable_plan_cache=False) as session:
            session.ucrpq("?x,?y <- ?x knows ?y").collect()
        snapshot = registry.snapshot()
        assert not any(key.startswith("repro_plan_cache_total")
                       for key in snapshot)
