"""Tracer mechanics: spans, nesting, scoping, adoption, the off switch."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.obs import tracing
from repro.obs.tracing import NOOP_SPAN, SpanRecord, TraceHandoff, Tracer


class TestDisabledPath:
    def test_disabled_tracer_hands_out_the_shared_noop_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.span("other", key="value") is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with NOOP_SPAN as span:
            assert span.enabled is False
            assert span.span_id is None
            assert span.set_attribute("k", "v") is span
        assert tracing.current_span_id() is None

    def test_ambient_default_is_disabled(self):
        assert tracing.tracing_enabled() is False
        assert tracing.span("anything") is NOOP_SPAN
        assert tracing.current_handoff() is None

    def test_suspended_short_circuits_to_the_disabled_tracer(self):
        with tracing.activate(Tracer(enabled=True)):
            assert tracing.tracing_enabled() is True
            with tracing.suspended():
                assert tracing.tracing_enabled() is False
                assert tracing.span("anything") is NOOP_SPAN
            assert tracing.tracing_enabled() is True


class TestEnabledPath:
    def test_spans_nest_and_finish_children_first(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", stage="a") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        records = tracer.records()
        assert [record.name for record in records] == ["inner", "outer"]

    def test_root_span_id_doubles_as_trace_id(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            assert root.trace_id == root.span_id
            assert root.parent_id is None

    def test_attributes_are_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("stage", rows=3) as span:
            span.set_attribute("extra", "yes")
        (record,) = tracer.records()
        assert record.attribute("rows") == 3
        assert record.attribute("extra") == "yes"
        assert record.attribute("missing", "default") == "default"

    def test_sibling_traces_are_distinct(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.records()
        assert first.trace_id != second.trace_id

    def test_capacity_bounds_the_buffer(self):
        tracer = Tracer(enabled=True, capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        records = tracer.records()
        assert len(records) == 4
        assert [record.name for record in records] == ["s6", "s7", "s8", "s9"]

    def test_exporter_sees_every_finished_record(self):
        exported = []
        tracer = Tracer(enabled=True, exporter=exported.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [record.name for record in exported] == ["inner", "outer"]

    def test_clear_empties_the_buffer(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.records() == []


class TestActivation:
    def test_activate_is_scoped(self):
        tracer = Tracer(enabled=True)
        assert tracing.current_tracer() is not tracer
        with tracing.activate(tracer):
            assert tracing.current_tracer() is tracer
        assert tracing.current_tracer() is not tracer

    def test_ambient_span_records_into_the_active_tracer(self):
        tracer = Tracer(enabled=True)
        with tracing.activate(tracer):
            with tracing.span("ambient", via="helper"):
                assert tracing.current_span_id() is not None
                assert tracing.current_trace_id() is not None
        (record,) = tracer.records()
        assert record.name == "ambient"

    def test_configure_tracing_swaps_the_process_default(self):
        installed = tracing.configure_tracing(enabled=True)
        try:
            assert tracing.current_tracer() is installed
            with tracing.span("via-default"):
                pass
            assert [r.name for r in installed.records()] == ["via-default"]
        finally:
            tracing.configure_tracing(enabled=False)
        assert tracing.tracing_enabled() is False


class TestHandoff:
    def test_handoff_is_none_without_an_open_span(self):
        with tracing.activate(Tracer(enabled=True)):
            assert tracing.current_handoff() is None

    def test_handoff_carries_the_open_span(self):
        tracer = Tracer(enabled=True)
        with tracing.activate(tracer):
            with tracer.span("driver") as span:
                handoff = tracing.current_handoff()
        assert handoff == TraceHandoff(trace_id=span.trace_id,
                                       parent_span_id=span.span_id)
        assert pickle.loads(pickle.dumps(handoff)) == handoff

    def test_run_traced_task_without_handoff_is_direct(self):
        value, records = tracing.run_traced_task(lambda x: x + 1, (41,), None)
        assert value == 42
        assert records == ()

    def test_run_traced_task_collects_spans_under_a_handoff(self):
        handoff = TraceHandoff(trace_id="t-1", parent_span_id="p-1")

        def task() -> int:
            with tracing.span("child-work"):
                pass
            return 7

        value, records = tracing.run_traced_task(task, (), handoff)
        assert value == 7
        assert [record.name for record in records] == ["child-work"]

    def test_adopt_grafts_orphans_under_the_handoff_parent(self):
        handoff = TraceHandoff(trace_id="driver-trace",
                               parent_span_id="driver-span")
        child = SpanRecord(trace_id="child-trace", span_id="c-1",
                           parent_id=None, name="remote", started_at=0.0,
                           duration_seconds=0.1)
        grandchild = SpanRecord(trace_id="child-trace", span_id="c-2",
                                parent_id="c-1", name="remote-inner",
                                started_at=0.0, duration_seconds=0.05)
        tracer = Tracer(enabled=True)
        tracer.adopt([child, grandchild], handoff)
        adopted = {record.span_id: record for record in tracer.records()}
        assert adopted["c-1"].parent_id == "driver-span"
        assert adopted["c-1"].trace_id == "driver-trace"
        assert adopted["c-2"].parent_id == "c-1"
        assert adopted["c-2"].trace_id == "driver-trace"

    def test_span_ids_are_pid_prefixed(self):
        tracer = Tracer(enabled=True)
        with tracer.span("here") as span:
            assert span.span_id.startswith(f"{os.getpid():x}-")


class TestRecordImmutability:
    def test_records_are_frozen(self):
        record = SpanRecord(trace_id="t", span_id="s", parent_id=None,
                            name="n", started_at=0.0, duration_seconds=0.0)
        with pytest.raises(AttributeError):
            record.name = "other"

    def test_reparented_copies(self):
        record = SpanRecord(trace_id="t", span_id="s", parent_id="old",
                            name="n", started_at=1.0, duration_seconds=2.0,
                            attributes=(("k", "v"),))
        moved = record.reparented("new", trace_id="t2")
        assert moved.parent_id == "new"
        assert moved.trace_id == "t2"
        assert moved.attributes == record.attributes
        assert record.parent_id == "old"
