"""Structured logging: hierarchy, JSON lines, trace correlation."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import tracing
from repro.obs.logs import (ROOT_LOGGER, JsonLinesFormatter, configure_logging,
                            get_logger, log_event, span_exporter)
from repro.obs.tracing import Tracer


@pytest.fixture
def clean_root():
    """Restore the repro root logger to its unconfigured state."""
    root = logging.getLogger(ROOT_LOGGER)
    saved = (list(root.handlers), root.level, root.propagate)
    yield root
    root.handlers[:], root.level, root.propagate = \
        saved[0], saved[1], saved[2]


def _configured(clean_root, level=logging.INFO):
    stream = io.StringIO()
    configure_logging(level=level, stream=stream)
    return stream


class TestHierarchy:
    def test_bare_names_are_prefixed(self):
        assert get_logger("session").name == "repro.session"
        assert get_logger("repro.session") is get_logger("session")
        assert get_logger().name == ROOT_LOGGER

    def test_module_loggers_inherit_the_configured_handler(self, clean_root):
        stream = _configured(clean_root)
        log_event(get_logger("repro.session"), "from session", graph="g")
        log_event(get_logger("repro.distributed"), "from distributed")
        lines = [json.loads(line)
                 for line in stream.getvalue().strip().splitlines()]
        assert [line["logger"] for line in lines] == [
            "repro.session", "repro.distributed"]

    def test_reconfiguring_replaces_instead_of_stacking(self, clean_root):
        _configured(clean_root)
        stream = _configured(clean_root)
        log_event(get_logger("repro.session"), "once")
        assert len(stream.getvalue().strip().splitlines()) == 1
        handlers = [h for h in clean_root.handlers
                    if h.get_name() == "repro-obs-jsonl"]
        assert len(handlers) == 1


class TestJsonLines:
    def test_event_fields_are_first_class_keys(self, clean_root):
        stream = _configured(clean_root)
        log_event(get_logger("repro.session"), "commit",
                  graph="yago", version=3)
        entry = json.loads(stream.getvalue())
        assert entry["message"] == "commit"
        assert entry["graph"] == "yago"
        assert entry["version"] == 3
        assert entry["level"] == "info"
        assert "ts" in entry

    def test_below_level_events_are_dropped(self, clean_root):
        stream = _configured(clean_root, level=logging.WARNING)
        log_event(get_logger("repro.session"), "chatty",
                  level=logging.DEBUG)
        assert stream.getvalue() == ""

    def test_exceptions_are_rendered(self, clean_root):
        stream = _configured(clean_root)
        logger = get_logger("repro.session")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed")
        entry = json.loads(stream.getvalue())
        assert "RuntimeError: boom" in entry["exception"]

    def test_unserializable_fields_fall_back_to_str(self, clean_root):
        stream = _configured(clean_root)
        log_event(get_logger("repro.session"), "odd", payload=object())
        entry = json.loads(stream.getvalue())
        assert "object object" in entry["payload"]


class TestTraceCorrelation:
    def test_lines_inside_a_span_carry_its_ids(self, clean_root):
        stream = _configured(clean_root)
        tracer = Tracer(enabled=True)
        with tracing.activate(tracer):
            with tracer.span("query") as span:
                log_event(get_logger("repro.session"), "inside")
        entry = json.loads(stream.getvalue())
        assert entry["trace_id"] == span.trace_id
        assert entry["span_id"] == span.span_id

    def test_lines_outside_any_span_have_no_trace_keys(self, clean_root):
        stream = _configured(clean_root)
        log_event(get_logger("repro.session"), "outside")
        entry = json.loads(stream.getvalue())
        assert "trace_id" not in entry

    def test_formatter_is_importable_standalone(self):
        record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                                   "hello", (), None)
        entry = json.loads(JsonLinesFormatter().format(record))
        assert entry["message"] == "hello"


class TestSpanExporter:
    def test_finished_spans_stream_through_the_logger(self, clean_root):
        stream = _configured(clean_root, level=logging.DEBUG)
        tracer = Tracer(enabled=True, exporter=span_exporter())
        with tracer.span("traced-stage", rows=4):
            pass
        entry = json.loads(stream.getvalue())
        assert entry["event"] == "span"
        assert entry["message"] == "traced-stage"
        assert entry["rows"] == 4
        assert "duration_seconds" in entry

    def test_exporter_is_silent_below_level(self, clean_root):
        stream = _configured(clean_root, level=logging.INFO)
        tracer = Tracer(enabled=True, exporter=span_exporter())
        with tracer.span("quiet"):
            pass
        assert stream.getvalue() == ""
