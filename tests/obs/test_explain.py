"""EXPLAIN ANALYZE: the span tree, the report accessors, the rendering."""

from __future__ import annotations

import pytest

from repro import Session
from repro.data import LabeledGraph
from repro.obs import explain
from repro.obs.explain import (ExplainAnalyzeReport, build_tree, render_tree)
from repro.obs.tracing import SpanRecord

TC_QUERY = "?x,?y <- ?x knows+ ?y"


def _record(span_id: str, parent_id: str | None, name: str,
            started_at: float = 0.0, **attributes: object) -> SpanRecord:
    return SpanRecord(trace_id="t", span_id=span_id, parent_id=parent_id,
                      name=name, started_at=started_at, duration_seconds=0.01,
                      attributes=tuple(attributes.items()))


class TestTree:
    def test_build_tree_resolves_parents_and_orders_children(self):
        records = [  # finish order: children first, siblings shuffled
            _record("c2", "root", "second", started_at=2.0),
            _record("c1", "root", "first", started_at=1.0),
            _record("root", None, "query", started_at=0.0),
        ]
        (root,) = build_tree(records)
        assert root.name == "query"
        assert [child.name for child in root.children] == ["first", "second"]

    def test_unresolvable_parents_become_roots(self):
        records = [_record("a", "gone", "orphan")]
        (root,) = build_tree(records)
        assert root.name == "orphan"

    def test_find_walks_the_subtree(self):
        records = [
            _record("i1", "f", explain.ITERATION, started_at=1.0),
            _record("i2", "f", explain.ITERATION, started_at=2.0),
            _record("f", None, explain.FIXPOINT),
        ]
        (root,) = build_tree(records)
        assert len(root.find(explain.ITERATION)) == 2

    def test_render_tree_shows_names_attributes_durations(self):
        records = [
            _record("child", "root", "fixpoint.iteration",
                    started_at=1.0, delta=3),
            _record("root", None, "query", graph="hidden"),
        ]
        text = render_tree(build_tree(records))
        assert "query" in text
        assert "└─ fixpoint.iteration  [delta=3]" in text
        assert "graph=" not in text  # graph is a hidden attribute
        assert "ms)" in text or "us)" in text


@pytest.fixture(scope="module")
def session():
    graph = LabeledGraph(name="explain-kg")
    graph.add_edges([(f"n{i}", "knows", f"n{i + 1}") for i in range(8)]
                    + [("n0", "livesIn", "lyon")])
    with Session(graph, num_workers=2) as session:
        yield session


class TestExplainAnalyze:
    def test_recursive_query_shows_iterations_and_drift(self, session):
        report = session.ucrpq(TC_QUERY).explain_analyze(
            use_result_cache=False)
        assert isinstance(report, ExplainAnalyzeReport)
        # The acceptance criterion: per-fixpoint-iteration spans with
        # observed cardinalities, plus estimate-vs-actual drift.
        assert report.fixpoints, "no fixpoint span recorded"
        assert report.iterations, "no per-iteration spans recorded"
        for iteration in report.iterations:
            assert iteration.attribute("delta") is not None
            assert iteration.attribute("total") is not None
        assert report.estimated_rows is not None
        assert report.actual_rows == len(report.result.relation)
        assert report.drift == pytest.approx(
            report.actual_rows / report.estimated_rows)
        fixpoint = report.fixpoints[0]
        assert fixpoint.attribute("actual_rows") == report.actual_rows
        assert fixpoint.attribute("drift") is not None

    def test_single_root_covering_every_stage(self, session):
        report = session.ucrpq(TC_QUERY).explain_analyze(
            use_result_cache=False)
        assert len(report.roots) == 1
        root = report.roots[0]
        assert root.name == explain.QUERY
        names = {node.name for node in root.walk()}
        assert explain.PLAN in names
        assert explain.EXECUTE in names
        assert explain.PHYSICAL in names

    def test_cache_outcomes_cold_then_hot(self, session):
        graph = LabeledGraph(name="explain-cold")
        graph.add_edges([("a", "knows", "b"), ("b", "knows", "c")])
        with Session(graph, num_workers=2) as fresh:
            cold = fresh.ucrpq(TC_QUERY).explain_analyze()
            hot = fresh.ucrpq(TC_QUERY).explain_analyze()
        assert cold.plan_cache_hit is False
        assert cold.result_cache_hit is False
        assert hot.plan_cache_hit is True
        assert hot.result_cache_hit is True
        assert hot.iterations == []  # a result-cache hit executes nothing

    def test_caches_can_be_bypassed(self, session):
        session.ucrpq(TC_QUERY).collect()  # ensure both caches are warm
        report = session.ucrpq(TC_QUERY).explain_analyze(
            use_plan_cache=False, use_result_cache=False)
        assert report.plan_cache_hit is None
        assert report.result_cache_hit is None
        assert report.iterations  # really re-executed

    def test_render_contains_summary_and_tree(self, session):
        report = session.ucrpq(TC_QUERY).explain_analyze(
            use_result_cache=False)
        text = str(report)
        assert text.startswith(f"EXPLAIN ANALYZE  {TC_QUERY}")
        assert f"rows: {report.actual_rows}" in text
        assert "drift:" in text
        assert "plan cache:" in text
        assert "fixpoint.iteration" in text

    def test_tracing_stays_off_for_other_queries(self, session):
        from repro.obs import tracing
        session.ucrpq(TC_QUERY).explain_analyze()
        assert tracing.tracing_enabled() is False

    def test_datalog_front_end(self, session):
        report = session.datalog(TC_QUERY).explain_analyze()
        names = {record.name for record in report.records}
        assert "query.parse" in names
        assert "query.translate" in names
        assert "query.evaluate" in names
        evaluate = report.spans("query.evaluate")[0]
        assert evaluate.attribute("iterations") >= 1
        assert report.actual_rows == len(report.result.relation)
