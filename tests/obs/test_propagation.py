"""Trace-context propagation across every concurrency boundary.

The tracer and current span live in ContextVars; every internal thread
hand-off (the ``threads`` executor backend, the session's background
worker, the service's request workers) copies the submitting context, and
the ``processes`` backend ships a :class:`TraceHandoff` and adopts the
child's records.  These tests pin the two properties that make traces
trustworthy:

* **continuity** — spans produced on worker threads / processes attach
  under the submitting query's root (one connected tree per query),
* **isolation** — concurrent queries never adopt each other's spans.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import QueryService, Session
from repro.data import LabeledGraph
from repro.obs import tracing
from repro.obs.tracing import Tracer

TC_QUERY = "?x,?y <- ?x knows+ ?y"


def _chain_graph(name: str = "prop-kg", length: int = 10) -> LabeledGraph:
    graph = LabeledGraph(name=name)
    graph.add_edges([(f"n{i}", "knows", f"n{i + 1}") for i in range(length)])
    return graph


def _assert_one_connected_trace(records) -> None:
    """Every record shares one trace id and parents resolve internally."""
    assert records
    trace_ids = {record.trace_id for record in records}
    assert len(trace_ids) == 1, f"records from {len(trace_ids)} traces"
    span_ids = {record.span_id for record in records}
    roots = [record for record in records if record.parent_id is None]
    assert len(roots) == 1, f"{len(roots)} roots in one trace"
    for record in records:
        if record.parent_id is not None:
            assert record.parent_id in span_ids, (
                f"{record.name} parented under a span outside the trace")


class TestExecutorBackends:
    @pytest.mark.parametrize("executor", ("serial", "threads", "processes"))
    def test_fixpoint_spans_join_the_query_trace(self, executor):
        tracer = Tracer(enabled=True)
        with Session(_chain_graph(), num_workers=2,
                     executor=executor) as session:
            with tracing.activate(tracer):
                with tracing.span("test.root"):
                    session.ucrpq(TC_QUERY).run_once(use_result_cache=False)
        records = tracer.records()
        _assert_one_connected_trace(records)
        names = {record.name for record in records}
        assert "fixpoint.iteration" in names, (
            f"{executor}: worker-side iteration spans did not reach "
            f"the submitting tracer")

    def test_thread_workers_see_the_submitting_span_as_parent(self):
        """A worker-thread task opened under a span nests beneath it."""
        from repro.distributed.executor import ThreadExecutor

        def task(index: int) -> str | None:
            with tracing.span("worker.task", index=index):
                return tracing.current_span_id()

        tracer = Tracer(enabled=True)
        backend = ThreadExecutor(max_workers=2)
        try:
            with tracing.activate(tracer):
                with tracing.span("driver") as driver:
                    outcomes = backend.map_tasks(task, [(0,), (1,)])
        finally:
            backend.close()
        assert all(outcome.value is not None for outcome in outcomes)
        task_records = [record for record in tracer.records()
                        if record.name == "worker.task"]
        assert len(task_records) == 2
        for record in task_records:
            assert record.parent_id == driver.span_id
            assert record.trace_id == driver.trace_id

    def test_process_workers_hand_spans_back_for_adoption(self):
        """The pickled handoff re-joins child-process spans to the trace."""
        tracer = Tracer(enabled=True)
        with Session(_chain_graph(), num_workers=2,
                     executor="processes") as session:
            with tracing.activate(tracer):
                with tracing.span("test.root"):
                    session.ucrpq(TC_QUERY).run_once(use_result_cache=False)
        _assert_one_connected_trace(tracer.records())


class TestBackgroundWorker:
    def test_async_view_maintenance_joins_the_committing_trace(self):
        tracer = Tracer(enabled=True)
        with Session(_chain_graph(), num_workers=2,
                     view_maintenance="async") as session:
            session.ucrpq(TC_QUERY).collect()  # a cache entry to maintain
            with tracing.activate(tracer):
                with tracing.span("test.commit") as commit_root:
                    session.add_edges("knows", [("n10", "n11")])
                    deadline = time.time() + 5.0
                    while (session.last_maintenance is None
                           and time.time() < deadline):
                        time.sleep(0.01)
        assert session.last_maintenance is not None, \
            "async maintenance never ran"
        passes = [record for record in tracer.records()
                  if record.name == "maintenance.pass"]
        assert len(passes) == 1
        assert passes[0].trace_id == commit_root.trace_id
        assert passes[0].attribute("mode") == "async"

    def test_submitted_actions_inherit_the_submitting_context(self):
        tracer = Tracer(enabled=True)

        def action() -> str | None:
            with tracing.span("background.action"):
                pass
            return tracing.current_trace_id()

        with Session(_chain_graph(), num_workers=2) as session:
            with tracing.activate(tracer):
                with tracing.span("test.submit") as root:
                    future = session.submit_action(action)
                    future.result(timeout=5)
        (record,) = [r for r in tracer.records()
                     if r.name == "background.action"]
        assert record.parent_id == root.span_id


class TestServiceIsolation:
    def test_concurrent_submits_do_not_leak_spans(self):
        """Each client's tracer sees exactly its own query's spans."""
        queries = [
            "?x,?y <- ?x knows+ ?y",
            "?x,?y <- ?x knows/knows ?y",
            "?x,?y <- ?x knows ?y",
        ]
        tracers = [Tracer(enabled=True) for _ in queries]
        errors: list[Exception] = []
        barrier = threading.Barrier(len(queries))

        def client(index: int) -> None:
            try:
                with tracing.activate(tracers[index]):
                    with tracing.span("client", index=index):
                        barrier.wait(timeout=10)
                        service.submit(queries[index], block=True) \
                               .result(timeout=30)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        session = Session(_chain_graph(), num_workers=2, executor="threads")
        with QueryService(session, max_in_flight=len(queries),
                          own_engine=True) as service:
            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(len(queries))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors
        for index, tracer in enumerate(tracers):
            records = tracer.records()
            _assert_one_connected_trace(records)
            (client_root,) = [r for r in records if r.name == "client"]
            assert client_root.attribute("index") == index
            (request,) = [r for r in records if r.name == "service.request"]
            assert request.parent_id == client_root.span_id

    def test_untraced_clients_stay_untraced(self):
        """A traced client next to an untraced one leaves no residue."""
        tracer = Tracer(enabled=True)
        session = Session(_chain_graph(), num_workers=2)
        with QueryService(session, own_engine=True) as service:
            with tracing.activate(tracer):
                service.submit(TC_QUERY, block=True).result(timeout=30)
            before = len(tracer.records())
            service.submit(TC_QUERY, block=True).result(timeout=30)
            assert len(tracer.records()) == before
