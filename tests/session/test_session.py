"""Session-level behaviour: front-end parity, caches, mutations, lifecycle."""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import TranslationError


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


class TestDatalogFrontEnd:
    def test_matches_ucrpq_front_end(self, session):
        text = "?x,?y <- ?x knows+ ?y"
        mu = session.ucrpq(text).collect().relation
        datalog = session.datalog(text).collect().relation
        assert mu == datalog

    def test_stages_are_lazy_and_memoized(self, session):
        handle = session.datalog("?x,?y <- ?x knows+ ?y")
        assert handle._program is not handle.program  # sentinel replaced
        assert handle.program is handle.program
        assert handle.collect() is handle.collect()

    def test_program_reports_left_linear_recursion(self, session):
        handle = session.datalog("?x,?y <- ?x knows+ ?y")
        decomposable, non_decomposable = handle.distribution()
        assert decomposable or non_decomposable

    def test_edb_follows_mutations(self, session):
        before = session.datalog("?x,?y <- ?x knows ?y").count()
        session.add_edges("knows", [("dave", "erin")])
        after = session.datalog("?x,?y <- ?x knows ?y").count()
        assert after == before + 1


class TestSessionCaches:
    def test_result_cache_serves_repeated_handles(self, session):
        text = "?x,?y <- ?x knows+ ?y"
        first = session.ucrpq(text)
        first.collect()
        assert first.last_result_cache_hit is False
        second = session.ucrpq(text)
        second.collect()
        assert second.last_result_cache_hit is True

    def test_mutation_never_purges_caches(self, session):
        """Keys are snapshot-qualified: a commit leaves both caches
        untouched, fresh handles key off the new head and old-snapshot
        readers keep hitting their entries."""
        text = "?x,?y <- ?x knows+ ?y"
        before = session.ucrpq(text).collect()
        assert len(session.plan_cache) == 1
        assert len(session.result_cache) == 1
        old_view = session.read_view()  # pinned to the pre-commit head
        session.add_edges("knows", [("dave", "erin")])
        # No eager purge: both entries survive the commit verbatim.
        assert len(session.plan_cache) == 1
        assert len(session.result_cache) == 1
        fresh = session.ucrpq(text)
        assert ("alice", "erin") in fresh.collect().relation.to_pairs("x", "y")
        assert fresh.last_result_cache_hit is False
        # A reader pinned to the superseded snapshot is a pure cache hit.
        old_reader = old_view.ucrpq(text)
        assert old_reader.collect().relation == before.relation
        assert old_reader.last_plan_cache_hit is True
        assert old_reader.last_result_cache_hit is True
        assert len(session.result_cache) == 2

    def test_caches_can_be_disabled_per_session(self, small_labeled_graph):
        with Session(small_labeled_graph, num_workers=2,
                     enable_plan_cache=False,
                     enable_result_cache=False) as session:
            query = session.ucrpq("?x,?y <- ?x knows+ ?y")
            query.collect()
            assert query.last_plan_cache_hit is None
            assert query.last_result_cache_hit is None
            assert len(session.plan_cache) == 0


class TestFrontEndDispatch:
    def test_as_query_accepts_all_forms(self, session):
        text = "?x,?y <- ?x knows+ ?y"
        by_text = session.as_query(text)
        by_ast = session.as_query(session.parse(text))
        by_term = session.as_query(by_text.term)
        handle = session.ucrpq(text)
        assert session.as_query(handle) is handle
        assert by_text.collect().relation == by_ast.collect().relation
        assert by_text.collect().relation == by_term.collect().relation

    def test_foreign_handles_are_rejected(self, session, small_labeled_graph):
        with Session(small_labeled_graph) as other:
            foreign = other.ucrpq("?x,?y <- ?x knows ?y")
            with pytest.raises(TranslationError):
                session.as_query(foreign)

    def test_explain_goes_through_the_pipeline(self, session):
        text = session.explain("?x <- ?x isLocatedIn+ europe")
        assert "C2" in text
        assert "plans explored" in text
