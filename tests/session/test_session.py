"""Session-level behaviour: front-end parity, caches, mutations, lifecycle."""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import TranslationError


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


class TestDatalogFrontEnd:
    def test_matches_ucrpq_front_end(self, session):
        text = "?x,?y <- ?x knows+ ?y"
        mu = session.ucrpq(text).collect().relation
        datalog = session.datalog(text).collect().relation
        assert mu == datalog

    def test_stages_are_lazy_and_memoized(self, session):
        handle = session.datalog("?x,?y <- ?x knows+ ?y")
        assert handle._program is not handle.program  # sentinel replaced
        assert handle.program is handle.program
        assert handle.collect() is handle.collect()

    def test_program_reports_left_linear_recursion(self, session):
        handle = session.datalog("?x,?y <- ?x knows+ ?y")
        decomposable, non_decomposable = handle.distribution()
        assert decomposable or non_decomposable

    def test_edb_follows_mutations(self, session):
        before = session.datalog("?x,?y <- ?x knows ?y").count()
        session.add_edges("knows", [("dave", "erin")])
        after = session.datalog("?x,?y <- ?x knows ?y").count()
        assert after == before + 1


class TestSessionCaches:
    def test_result_cache_serves_repeated_handles(self, session):
        text = "?x,?y <- ?x knows+ ?y"
        first = session.ucrpq(text)
        first.collect()
        assert first.last_result_cache_hit is False
        second = session.ucrpq(text)
        second.collect()
        assert second.last_result_cache_hit is True

    def test_mutation_maintains_caches_instead_of_purging(self, session):
        """Keys are snapshot-qualified and commits *maintain* cached
        recursive results: the old entry survives for pinned readers and
        a maintained twin appears under the successor fingerprint, so a
        fresh handle hits without re-running the fixpoint."""
        text = "?x,?y <- ?x knows+ ?y"
        before = session.ucrpq(text).collect()
        assert len(session.plan_cache) == 1
        assert len(session.result_cache) == 1
        old_view = session.read_view()  # pinned to the pre-commit head
        session.add_edges("knows", [("dave", "erin")])
        # No eager purge — and the insert-only commit resumed the cached
        # fixpoint, promoting a second entry keyed to the new head.
        assert len(session.plan_cache) == 1
        assert len(session.result_cache) == 2
        stats = session.last_maintenance
        assert stats is not None and stats.resumed == 1
        fresh = session.ucrpq(text)
        assert ("alice", "erin") in fresh.collect().relation.to_pairs("x", "y")
        assert fresh.last_result_cache_hit is True
        # A reader pinned to the superseded snapshot is a pure cache hit.
        old_reader = old_view.ucrpq(text)
        assert old_reader.collect().relation == before.relation
        assert old_reader.last_plan_cache_hit is True
        assert old_reader.last_result_cache_hit is True

    def test_maintenance_off_restores_stale_miss_contract(
            self, small_labeled_graph):
        """With maintenance off, the pre-maintenance behaviour holds:
        the commit leaves the cache verbatim and a fresh handle misses
        (then recomputes correctly through the normal path)."""
        with Session(small_labeled_graph, num_workers=2,
                     view_maintenance="off") as session:
            text = "?x,?y <- ?x knows+ ?y"
            session.ucrpq(text).collect()
            session.add_edges("knows", [("dave", "erin")])
            assert len(session.result_cache) == 1
            assert session.last_maintenance is None
            fresh = session.ucrpq(text)
            pairs = fresh.collect().relation.to_pairs("x", "y")
            assert ("alice", "erin") in pairs
            assert fresh.last_result_cache_hit is False

    def test_caches_can_be_disabled_per_session(self, small_labeled_graph):
        with Session(small_labeled_graph, num_workers=2,
                     enable_plan_cache=False,
                     enable_result_cache=False) as session:
            query = session.ucrpq("?x,?y <- ?x knows+ ?y")
            query.collect()
            assert query.last_plan_cache_hit is None
            assert query.last_result_cache_hit is None
            assert len(session.plan_cache) == 0


class TestPlanMutationEdgeCases:
    """Unit coverage of ``Session._plan_mutation`` and batch netting."""

    def test_partial_overlap_removal_touches_only_present_pairs(self, session):
        """Removing a mix of present and absent pairs removes exactly
        the present ones — and keeps the inverse and facts tables in
        lockstep."""
        before = session.snapshot()
        touched = session.remove_edges(
            "knows", [("alice", "bob"), ("ghost", "spook")])
        assert "knows" in touched
        after = session.snapshot()
        assert len(after["knows"]) == len(before["knows"]) - 1
        assert ("alice", "bob") not in after["knows"].rows
        assert ("bob", "alice") not in after["-knows"].rows
        if "facts" in after:
            assert ("knows", "alice", "bob") not in after["facts"].rows

    def test_fully_absent_removal_is_a_noop(self, session):
        version = session.database_version
        touched = session.remove_edges("knows", [("ghost", "spook")])
        assert touched == ()
        assert session.database_version == version

    def test_additions_update_inverse_and_facts_consistently(self, session):
        session.add_edges("knows", [("dave", "erin")])
        after = session.snapshot()
        assert ("dave", "erin") in after["knows"].rows
        assert ("erin", "dave") in after["-knows"].rows
        if "facts" in after:
            assert ("knows", "dave", "erin") in after["facts"].rows
            # One version bump covers all three relations of the label.
            assert (after.relation_version("facts")
                    == after.relation_version("knows")
                    == after.relation_version("-knows"))

    def test_plan_mutation_returns_only_changed_relations(self, session):
        """Direct unit check: adding an already-present pair plans no
        changes at all (no phantom inverse/facts replacements)."""
        database = session.snapshot()
        changes = Session._plan_mutation(
            database, "knows", {("alice", "bob")}, removing=False)
        assert changes == {}

    def test_plan_mutation_creates_inverse_for_new_labels(self, session):
        database = session.snapshot()
        changes = Session._plan_mutation(
            database, "mentors", {("alice", "bob")}, removing=False)
        assert set(changes) >= {"mentors", "-mentors"}
        assert ("bob", "alice") in changes["-mentors"].rows

    def test_add_then_remove_nets_out_in_one_transaction(self, session):
        """A batch that adds and then removes the same pair (plus one
        real change) commits one snapshot reflecting only the net
        effect, with the inverse kept consistent."""
        version = session.database_version
        with session.transaction() as txn:
            txn.add_edges("knows", [("u1", "u2"), ("u3", "u4")])
            txn.remove_edges("knows", [("u1", "u2")])
        after = session.snapshot()
        assert session.database_version == version + 1
        assert ("u1", "u2") not in after["knows"].rows
        assert ("u3", "u4") in after["knows"].rows
        assert ("u2", "u1") not in after["-knows"].rows
        assert ("u4", "u3") in after["-knows"].rows


class TestFrontEndDispatch:
    def test_as_query_accepts_all_forms(self, session):
        text = "?x,?y <- ?x knows+ ?y"
        by_text = session.as_query(text)
        by_ast = session.as_query(session.parse(text))
        by_term = session.as_query(by_text.term)
        handle = session.ucrpq(text)
        assert session.as_query(handle) is handle
        assert by_text.collect().relation == by_ast.collect().relation
        assert by_text.collect().relation == by_term.collect().relation

    def test_foreign_handles_are_rejected(self, session, small_labeled_graph):
        with Session(small_labeled_graph) as other:
            foreign = other.ucrpq("?x,?y <- ?x knows ?y")
            with pytest.raises(TranslationError):
                session.as_query(foreign)

    def test_explain_goes_through_the_pipeline(self, session):
        text = session.explain("?x <- ?x isLocatedIn+ europe")
        assert "C2" in text
        assert "plans explored" in text
