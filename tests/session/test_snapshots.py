"""Snapshot isolation: immutable heads, COW commits, transactions, graphs.

The acceptance contract of the snapshot redesign:

* mutations build a *new* :class:`DatabaseSnapshot` with structural
  sharing (untouched ``Relation`` objects — and their memoized hash
  indexes — are the same objects across versions) and atomically swap
  the head; no cache is ever purged,
* no-op mutations (adding present pairs, removing absent ones, empty
  iterables) create no snapshot and bump no version,
* query handles pin the head at their first stage and are repeatable
  reads; ``read_view()`` pins a whole session view,
* ``transaction()`` batches mutations into one commit (or rolls back),
* ``attach()`` / ``graph()`` scope heads, versions and caches per named
  graph,
* the plan phase, result-cache hits and commits all run without the
  execution lock.
"""

from __future__ import annotations

import threading

import pytest

from repro import DatabaseSnapshot, Session
from repro.errors import DatasetError, SchemaError, TransactionError

KNOWS = "?x,?y <- ?x knows+ ?y"


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


class TestSnapshotType:
    def test_snapshot_is_a_readonly_versioned_mapping(self, session):
        snapshot = session.snapshot()
        assert isinstance(snapshot, DatabaseSnapshot)
        assert snapshot.version == 0
        assert "knows" in snapshot and "facts" in snapshot
        assert set(snapshot.keys()) == set(dict(snapshot).keys())
        with pytest.raises(TypeError):
            snapshot["knows"] = snapshot["facts"]  # Mapping, not MutableMapping

    def test_commit_swaps_the_head_and_keeps_the_old_snapshot(self, session):
        old = session.snapshot()
        old_pairs = old["knows"].to_pairs("src", "trg")
        session.add_edges("knows", [("dave", "erin")])
        new = session.snapshot()
        assert new is not old
        assert new.version == old.version + 1
        # The old snapshot is untouched — repeatable reads forever.
        assert old["knows"].to_pairs("src", "trg") == old_pairs
        assert ("dave", "erin") in new["knows"].to_pairs("src", "trg")

    def test_structural_sharing_of_untouched_relations(self, session):
        old = session.snapshot()
        session.add_edges("knows", [("dave", "erin")])
        new = session.snapshot()
        touched = {"knows", "-knows", "facts"}
        for name in old:
            if name in touched:
                assert new[name] is not old[name]
            else:
                # Same object, not just equal: hash indexes are shared.
                assert new[name] is old[name]

    def test_shared_relations_keep_their_memoized_indexes(self, session):
        old = session.snapshot()
        old["livesIn"].index_on(("src",))
        assert old["livesIn"].has_index(("src",))
        session.add_edges("knows", [("dave", "erin")])
        assert session.snapshot()["livesIn"].has_index(("src",))

    def test_fingerprint_tracks_touched_relations_only(self, session):
        session.add_edges("knows", [("dave", "erin")])
        snapshot = session.snapshot()
        assert snapshot.fingerprint(("knows",)) == (("knows", 1),)
        assert snapshot.fingerprint(("livesIn",)) == (("livesIn", 0),)
        # Unknown names are fingerprinted at 0 so their later appearance
        # changes the key.
        assert snapshot.fingerprint(("nosuch",)) == (("nosuch", 0),)

    def test_statistics_travel_with_the_snapshot(self, session):
        old = session.snapshot()
        before = old.catalog.get("knows").cardinality
        session.add_edges("knows", [("dave", "erin")])
        new = session.snapshot()
        assert new.catalog.get("knows").cardinality == before + 1
        assert old.catalog.get("knows").cardinality == before
        # Untouched statistics objects are shared (copy-on-write catalog).
        assert new.catalog.get("livesIn") is old.catalog.get("livesIn")


class TestCommitDeltas:
    def test_deltas_report_added_and_removed_rows(self, session):
        session.add_edges("knows", [("dave", "erin")])
        successor = session.snapshot()
        assert "knows" in successor.touched
        delta = successor.deltas()["knows"]
        assert set(delta.added.rows) == {("dave", "erin")}
        assert not delta.removed
        assert delta.size == 1 and bool(delta)
        session.remove_edges("knows", [("alice", "bob")])
        removal = session.snapshot().deltas()["knows"]
        assert set(removal.removed.rows) == {("alice", "bob")}
        assert not removal.added

    def test_version_zero_roots_have_no_deltas(self, session):
        root = session.snapshot()
        assert root.touched == ()
        assert dict(root.deltas()) == {}

    def test_relabeled_snapshots_start_a_fresh_lineage(self, session):
        session.add_edges("knows", [("dave", "erin")])
        twin = session.snapshot().relabeled("twin")
        assert twin.touched == ()
        assert dict(twin.deltas()) == {}

    def test_deltas_are_memoized(self, session):
        session.add_edges("knows", [("dave", "erin")])
        successor = session.snapshot()
        assert successor.deltas() is successor.deltas()

    def test_new_relation_delta_is_all_added(self, session):
        session.add_edges("mentors", [("alice", "bob")])
        delta = session.snapshot().deltas()["mentors"]
        assert set(delta.added.rows) == {("alice", "bob")}
        assert not delta.removed


class TestDerivedMemo:
    def test_none_artifacts_are_computed_once(self, session):
        """Regression: ``derived()`` used ``None`` as its miss marker,
        so a computation legitimately returning ``None`` (or any falsy
        artifact) re-ran on every call instead of being memoized."""
        snapshot = session.snapshot()
        calls = []

        def compute_none(snap):
            calls.append(snap)
            return  # a computed (and cached) None, spelled bare for RET501

        assert snapshot.derived("nothing", compute_none) is None
        assert snapshot.derived("nothing", compute_none) is None
        assert len(calls) == 1

    def test_falsy_artifacts_are_memoized_too(self, session):
        snapshot = session.snapshot()
        computed = snapshot.derived("empty", lambda snap: {})
        assert computed == {}
        assert snapshot.derived("empty", lambda snap: {"not": "this"}) is computed


class TestNoOpMutations:
    def test_adding_present_pairs_is_a_noop(self, session):
        present = next(iter(session.snapshot()["knows"].to_pairs("src", "trg")))
        head = session.snapshot()
        assert session.add_edges("knows", [present]) == ()
        assert session.snapshot() is head
        assert session.database_version == 0
        assert session.relation_version("knows") == 0

    def test_empty_iterables_are_noops(self, session):
        head = session.snapshot()
        assert session.add_edges("knows", []) == ()
        assert session.remove_edges("knows", []) == ()
        assert session.snapshot() is head

    def test_removing_absent_pairs_is_a_noop(self, session):
        head = session.snapshot()
        assert session.remove_edges("knows", [("nobody", "noone")]) == ()
        assert session.snapshot() is head
        assert session.database_version == 0

    def test_noop_mutations_leave_cache_entries_live(self, session):
        """Regression: no-ops used to bump versions, silently orphaning
        every dependent cache entry."""
        query = session.ucrpq(KNOWS)
        query.collect()
        present = next(iter(session.snapshot()["knows"].to_pairs("src", "trg")))
        session.add_edges("knows", [present])
        session.remove_edges("knows", [("nobody", "noone")])
        replay = session.ucrpq(KNOWS)
        replay.collect()
        assert replay.last_plan_cache_hit is True
        assert replay.last_result_cache_hit is True


class TestQueryPinning:
    def test_handle_pins_at_first_stage_and_is_repeatable(self, session):
        handle = session.ucrpq(KNOWS)
        assert handle.pinned_snapshot is None  # construction pins nothing
        handle.term  # first stage that needs the database
        pinned = handle.pinned_snapshot
        assert pinned is session.snapshot()
        session.add_edges("knows", [("dave", "erin")])
        assert handle.pinned_snapshot is pinned
        # The action reads the pinned version, not the new head.
        fresh = session.ucrpq(KNOWS)
        assert handle.count() < fresh.count()

    def test_run_once_reads_the_head_each_call(self, session):
        handle = session.ucrpq(KNOWS)
        before, _, _ = handle.run_once()
        session.add_edges("knows", [("dave", "erin")])
        after, _, _ = handle.run_once()
        assert len(after.relation) > len(before.relation)

    def test_datalog_handle_pins_too(self, session):
        handle = session.datalog("?x,?y <- ?x knows ?y")
        result = handle.collect()
        session.add_edges("knows", [("dave", "erin")])
        assert handle.pinned_snapshot.version == 0
        assert len(session.datalog("?x,?y <- ?x knows ?y").collect().relation) \
            == len(result.relation) + 1


class TestTransactions:
    def test_transaction_commits_once_on_exit(self, session):
        with session.transaction() as txn:
            txn.add_edges("knows", [("dave", "erin")])
            txn.add_edges("worksAt", [("erin", "cnrs")])
            txn.remove_edges("knows", [("alice", "bob")])
            # Nothing is visible before the commit.
            assert session.database_version == 0
        assert session.database_version == 1  # one bump for the batch
        head = session.snapshot()
        assert ("dave", "erin") in head["knows"].to_pairs("src", "trg")
        assert ("alice", "bob") not in head["knows"].to_pairs("src", "trg")
        assert ("erin", "cnrs") in head["worksAt"].to_pairs("src", "trg")

    def test_transaction_sees_its_own_earlier_ops(self, session):
        with session.transaction() as txn:
            txn.add_edges("mentors", [("alice", "bob"), ("bob", "carol")])
            txn.remove_edges("mentors", [("alice", "bob")])
        head = session.snapshot()
        assert head["mentors"].to_pairs("src", "trg") == {("bob", "carol")}
        assert session.database_version == 1

    def test_net_zero_batch_commits_nothing(self, session):
        """Ops that cancel out — including creating and emptying a brand
        new label — must not commit a snapshot or a phantom relation."""
        head = session.snapshot()
        with session.transaction() as txn:
            txn.add_edges("knows", [("x1", "y1")])
            txn.remove_edges("knows", [("x1", "y1")])
            txn.add_edges("mentors", [("alice", "bob")])
            txn.remove_edges("mentors", [("alice", "bob")])
        assert session.snapshot() is head
        assert session.database_version == 0
        assert "mentors" not in session.snapshot()

    def test_exception_rolls_back(self, session):
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.add_edges("knows", [("dave", "erin")])
                raise RuntimeError("abort")
        assert session.database_version == 0
        assert ("dave", "erin") not in \
            session.snapshot()["knows"].to_pairs("src", "trg")

    def test_explicit_rollback_and_finished_misuse(self, session):
        txn = session.transaction()
        txn.add_edges("knows", [("dave", "erin")])
        txn.rollback()
        assert session.database_version == 0
        with pytest.raises(TransactionError):
            txn.add_edges("knows", [("x", "y")])
        with pytest.raises(TransactionError):
            txn.commit()

    def test_failed_commit_leaves_the_transaction_open(self, session):
        """A commit that validates nothing into place must not poison the
        transaction as committed: rollback still works afterwards."""
        from repro.errors import EvaluationError
        txn = session.transaction()
        txn.remove_edges("noSuchRelation", [("a", "b")])
        with pytest.raises(EvaluationError):
            txn.commit()
        assert session.database_version == 0
        txn.rollback()  # still allowed: nothing was committed
        with pytest.raises(TransactionError):
            txn.commit()

    def test_empty_removal_from_unknown_relation_still_raises(self, session):
        """Regression: the empty-iterable fast path must not skip the
        unknown-relation check (callers use it to catch typo'd names)."""
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError):
            session.remove_edges("noSuchRelation", [])
        assert session.database_version == 0

    def test_invalid_op_leaves_everything_unapplied(self, session):
        """Atomicity: validation failure anywhere applies nothing."""
        from repro import Relation
        with Session({"knows": Relation.from_pairs([("a", "b")],
                                                   columns=("src", "trg")),
                      "-knows": Relation(("x", "y"), [("b", "a")])},
                     num_workers=2) as broken:
            with pytest.raises(SchemaError):
                with broken.transaction() as txn:
                    txn.add_edges("other", [("c", "d")])
                    txn.add_edges("knows", [("c", "d")])  # schema mismatch
            assert broken.database_version == 0
            assert "other" not in broken.snapshot()

    def test_all_noop_batch_creates_no_snapshot(self, session):
        present = next(iter(session.snapshot()["knows"].to_pairs("src", "trg")))
        with session.transaction() as txn:
            txn.add_edges("knows", [present])
            txn.remove_edges("knows", [("nobody", "noone")])
        assert session.database_version == 0


class TestReadView:
    def test_read_view_is_pinned_and_read_only(self, session):
        view = session.read_view()
        pinned = view.snapshot()
        session.add_edges("knows", [("dave", "erin")])
        assert view.snapshot() is pinned
        assert view.ucrpq(KNOWS).count() < session.ucrpq(KNOWS).count()
        with pytest.raises(TransactionError):
            view.add_edges("knows", [("x", "y")])
        with pytest.raises(TransactionError):
            view.transaction()
        view.close()  # no-op: the root session owns the cluster
        assert session.ucrpq(KNOWS).count() > 0


class TestMultiGraph:
    def test_attach_and_scope_queries_per_graph(self, session,
                                                small_labeled_graph):
        from repro import LabeledGraph
        other = LabeledGraph(name="tiny")
        other.add_edge("a", "knows", "b")
        other.add_edge("b", "knows", "c")
        session.attach("tiny", other)
        assert session.graphs() == ("default", "tiny")
        tiny = session.graph("tiny")
        assert tiny.ucrpq(KNOWS).count() == 3  # a->b, b->c, a->c
        assert session.ucrpq(KNOWS).count() != 3
        # Versions are per graph.
        tiny.add_edges("knows", [("c", "d")])
        assert tiny.database_version == 1
        assert session.database_version == 0

    def test_caches_are_scoped_per_graph(self, session):
        from repro import LabeledGraph
        other = LabeledGraph(name="tiny")
        other.add_edge("a", "knows", "b")
        session.attach("tiny", other)
        session.ucrpq(KNOWS).collect()
        tiny = session.graph("tiny")
        handle = tiny.ucrpq(KNOWS)
        handle.collect()
        # Same text, same version fingerprints — but disjoint caches, so
        # the tiny graph cannot hit the default graph's entries.
        assert handle.last_plan_cache_hit is False
        assert handle.last_result_cache_hit is False
        assert len(session.plan_cache) == 1
        assert len(tiny.plan_cache) == 1
        assert tiny.plan_cache is not session.plan_cache

    def test_graph_views_are_memoized_and_shared(self, session):
        from repro import LabeledGraph
        session.attach("tiny", LabeledGraph.from_triples([("a", "knows", "b")]))
        assert session.graph("tiny") is session.graph("tiny")
        assert session.graph("default") is session

    def test_views_observe_root_config_changes_live(self, session):
        """Views are scopes, not copies: engine config changed on the
        root after a view is created must be visible through it."""
        from repro import LabeledGraph
        session.attach("tiny", LabeledGraph.from_triples([("a", "knows", "b")]))
        view = session.graph("tiny")
        session.strategy = "pgld"
        session.enable_result_cache = False
        session.memory_per_task = 123
        assert view.strategy == "pgld"
        assert view.enable_result_cache is False
        assert view.memory_per_task == 123

    def test_attaching_a_snapshot_relabels_it(self, session):
        """Attaching another graph's head under a new name must not keep
        the old label on the new lineage."""
        session.attach("backup", session.snapshot())
        backup = session.graph("backup")
        assert backup.snapshot().graph_name == "backup"
        backup.add_edges("knows", [("zz1", "zz2")])
        assert backup.snapshot().graph_name == "backup"  # successors too
        # Content was shared; the original graph is untouched.
        assert session.database_version == 0
        assert backup.database_version == 1

    def test_graph_management_errors(self, session, small_labeled_graph):
        with pytest.raises(DatasetError):
            session.graph("nosuch")
        with pytest.raises(DatasetError):
            session.attach("default", small_labeled_graph)
        with pytest.raises(DatasetError):
            session.detach("default")
        with pytest.raises(DatasetError):
            session.detach("nosuch")
        session.attach("extra", small_labeled_graph)
        session.detach("extra")
        with pytest.raises(DatasetError):
            session.graph("extra")


class TestLockFreedom:
    def test_plan_phase_and_cache_hits_need_no_execution_lock(self, session):
        """A thread holding the execution lock blocks physical executions
        only: planning, result-cache hits and commits all proceed."""
        warm = session.ucrpq(KNOWS)
        warm.collect()  # warm both caches at version 0... then re-pin below
        outcomes = {}

        def reader():
            handle = session.ucrpq(KNOWS)
            handle.plan()  # plan phase: cache hit, no lock
            outcomes["plan"] = handle.last_plan_cache_hit
            outcomes["rows"] = handle.count()  # result-cache hit, no lock
            outcomes["result"] = handle.last_result_cache_hit

        def writer():
            outcomes["touched"] = session.add_edges("worksAt",
                                                    [("erin", "cnrs")])

        with session.execution_lock:
            for target in (reader, writer):
                thread = threading.Thread(target=target)
                thread.start()
                thread.join(timeout=10)
                assert not thread.is_alive(), \
                    f"{target.__name__} blocked on the execution lock"
        assert outcomes["plan"] is True
        assert outcomes["result"] is True
        assert outcomes["rows"] == warm.count()
        assert "worksAt" in outcomes["touched"]
