"""Laziness and memoization of the staged Query pipeline.

The acceptance contract of the Session API: constructing a handle does
no work at all (not even parsing), each stage runs exactly once on first
access, and the stages agree with the batch entry points.
"""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import QueryParseError, TranslationError

QUERY = "?x,?y <- ?x knows+ ?y"


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


class TestConstructionIsFree:
    def test_construction_does_not_parse(self, session, monkeypatch):
        calls = []
        import repro.session.session as session_module
        original = session_module.parse_query

        def counting(text):
            calls.append(text)
            return original(text)

        monkeypatch.setattr(session_module, "parse_query", counting)
        query = session.ucrpq(QUERY)
        assert calls == []
        query.ast
        assert calls == [QUERY]
        query.ast  # memoized: no second parse
        query.term
        assert calls == [QUERY]
        assert repr(query).count("ast") == 1

    def test_malformed_text_only_fails_on_first_stage_access(self, session):
        query = session.ucrpq("?x <- ?x +broken")  # constructing is fine
        with pytest.raises(QueryParseError):
            query.ast

    def test_unknown_label_only_fails_at_translation(self, session):
        query = session.ucrpq("?x,?y <- ?x noSuchLabel+ ?y")
        query.ast  # parsing succeeds
        with pytest.raises(TranslationError):
            query.term

    def test_no_optimization_until_plan_stage(self, session):
        explores = []
        original = session.rewriter.explore

        def counting_explore(*args, **kwargs):
            explores.append(1)
            return original(*args, **kwargs)

        session.rewriter.explore = counting_explore
        query = session.ucrpq(QUERY)
        query.ast
        query.term
        query.normalized
        query.cache_key
        assert explores == []
        query.plan()
        assert explores == [1]
        query.plan()      # memoized on the handle
        query.collect()   # reuses the resolved plan
        assert explores == [1]


class TestStages:
    def test_stage_chain_is_consistent(self, session):
        query = session.ucrpq(QUERY)
        assert [v.name for v in query.ast.head] == ["x", "y"]
        assert query.cache_key  # canonical printed form, non-empty
        # The canonical form of the translated term is the plan identity:
        # an equivalent handle built from the parsed AST agrees.
        twin = session.ucrpq(query.ast)
        assert twin.cache_key == query.cache_key

    def test_classes_are_reported(self, session):
        assert "C2" in session.ucrpq("?x <- ?x isLocatedIn+ europe").classes

    def test_raw_term_handle_has_no_ast(self, session):
        term = session.ucrpq(QUERY).term
        handle = session.term(term, classes=frozenset({"C7"}))
        with pytest.raises(TranslationError):
            handle.ast
        assert handle.classes == frozenset({"C7"})
        assert handle.count() > 0

    def test_explain_mentions_pipeline_and_classes(self, session):
        text = session.ucrpq("?x <- ?x isLocatedIn+ europe").explain()
        assert "C2" in text
        assert "plans explored" in text
        assert "front-end -> term -> normalize -> rank" in text


class TestActions:
    def test_collect_count_exists_agree(self, session):
        query = session.ucrpq(QUERY)
        result = query.collect()
        assert query.count() == len(result.relation)
        assert query.exists() is (len(result.relation) > 0)

    def test_collect_is_memoized_per_strategy(self, session):
        from repro import PGLD, PPLW_SPARK
        query = session.ucrpq(QUERY)
        assert query.collect() is query.collect()
        assert query.collect(PGLD) is not query.collect(PPLW_SPARK)

    def test_stream_batches_cover_the_result(self, session):
        query = session.ucrpq(QUERY)
        batches = list(query.stream(batch_size=3))
        assert all(len(batch) <= 3 for batch in batches)
        streamed = {row for batch in batches for row in batch}
        assert streamed == set(query.collect().relation.rows)

    def test_stream_rejects_nonpositive_batch(self, session):
        with pytest.raises(ValueError):
            next(session.ucrpq(QUERY).stream(batch_size=0))

    def test_stream_is_snapshot_consistent_under_mutations(self, session):
        """Mutations interleaved between yielded batches (or between
        creating and consuming the iterator) never change the stream:
        stream() pins the handle's snapshot and the batches cover exactly
        that version.  Before snapshots this silently depended on when
        the first batch was pulled."""
        handle = session.ucrpq(QUERY)
        stream = handle.stream(batch_size=2)
        pinned = handle.pinned_snapshot
        assert pinned is not None  # pinned at stream() call, not first next()
        expected = set(handle.collect().relation.rows)
        streamed: set = set()
        mutations = 0
        for batch in stream:
            streamed.update(batch)
            session.add_edges("knows", [(f"m{mutations}", f"m{mutations + 1}")])
            mutations += 1
        assert mutations >= 2  # the interleaving actually happened
        assert streamed == expected
        assert handle.pinned_snapshot is pinned
        # A fresh handle sees every interleaved commit.
        assert session.ucrpq(QUERY).count() > len(expected)

    def test_submit_returns_future_with_query_result(self, session):
        future = session.ucrpq(QUERY).submit()
        result = future.result(timeout=30)
        assert len(result.relation) == session.ucrpq(QUERY).count()

    def test_matches_eager_facade_answer(self, small_labeled_graph, session):
        import warnings
        from repro import DistMuRA
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with DistMuRA(small_labeled_graph, num_workers=2) as engine:
                eager = engine.query(QUERY)
        assert session.ucrpq(QUERY).collect().relation == eager.relation
