"""Prepared/parameterized queries: plan once, bind many, answers correct."""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import TranslationError
from repro.session.parameters import Parameter, parameters_of


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


def count_explores(session):
    """Instrument the rewriter; returns the live call-count list."""
    calls = []
    original = session.rewriter.explore

    def counting_explore(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    session.rewriter.explore = counting_explore
    return calls


class TestValueParameters:
    def test_bindings_match_adhoc_queries(self, session):
        prepared = session.prepare("?y <- :start knows+ ?y")
        for start in ("alice", "bob", "nobody"):
            bound = prepared.bind(start=start).collect().relation
            adhoc = session.ucrpq(f"?y <- {start} knows+ ?y") \
                if start != "nobody" else None
            if adhoc is not None:
                assert bound == adhoc.collect().relation
            else:
                assert len(bound) == 0

    def test_one_explore_for_many_bindings(self, session):
        calls = count_explores(session)
        prepared = session.prepare("?y <- :start knows+ ?y")
        for start in ("alice", "bob", "carol", "dave", "alice"):
            prepared.bind(start=start).collect()
        assert calls == [1]
        stats = session.plan_cache.stats
        assert stats.hits >= 4

    def test_distinct_bindings_do_not_share_results(self, session):
        prepared = session.prepare("?y <- :start knows ?y")
        alice = prepared.bind(start="alice").collect().relation
        bob = prepared.bind(start="bob").collect().relation
        assert alice != bob

    def test_mutation_invalidates_the_template_plan(self, session):
        calls = count_explores(session)
        prepared = session.prepare("?y <- :start knows+ ?y")
        prepared.bind(start="alice").collect()
        assert calls == [1]
        session.add_edges("knows", [("zoe", "alice")])
        prepared.bind(start="zoe").collect()
        # New statistics, new fingerprint: the template is re-planned once.
        assert calls == [1, 1]


class TestPreparedAcrossSnapshots:
    def test_rebinding_after_commit_sees_the_new_head(self, session):
        """prepare() once, bind/collect, mutate, bind/collect again: the
        second execution reads the new head while the template's
        one-explore-per-snapshot guarantee still holds."""
        calls = count_explores(session)
        prepared = session.prepare("?y <- :start knows+ ?y")
        first = prepared.bind(start="alice")
        before = first.collect().relation
        assert calls == [1]
        session.add_edges("knows", [("dave", "zoe")])
        second = prepared.bind(start="alice")
        after = second.collect().relation
        # The new binding pinned the new head: zoe is reachable now.
        assert "zoe" in after.column_values("y")
        assert second.pinned_snapshot.version == 1
        # One re-explore for the new fingerprint, then hits again.
        assert calls == [1, 1]
        third = prepared.bind(start="bob")
        third.collect()
        assert calls == [1, 1]
        # The first binding stays a repeatable read of its snapshot.
        assert first.collect().relation == before
        assert first.pinned_snapshot.version == 0


class TestLabelParameters:
    def test_label_binding_selects_the_relation(self, session):
        prepared = session.prepare("?x,?y <- ?x :edge+ ?y", params=("edge",))
        knows = prepared.bind(edge="knows").collect().relation
        located = prepared.bind(edge="isLocatedIn").collect().relation
        assert knows == session.ucrpq("?x,?y <- ?x knows+ ?y").collect().relation
        assert located == \
            session.ucrpq("?x,?y <- ?x isLocatedIn+ ?y").collect().relation

    def test_rebinding_same_label_hits_the_plan_cache(self, session):
        calls = count_explores(session)
        prepared = session.prepare("?x,?y <- ?x :edge+ ?y")
        prepared.bind(edge="knows").collect()
        prepared.bind(edge="isLocatedIn").collect()
        prepared.bind(edge="knows").collect()
        # One explore per distinct label (their statistics differ), then hits.
        assert calls == [1, 1]

    def test_unknown_label_binding_fails_cleanly(self, session):
        prepared = session.prepare("?x,?y <- ?x :edge+ ?y")
        with pytest.raises(TranslationError):
            prepared.bind(edge="noSuchLabel")

    def test_label_binding_must_be_a_string(self, session):
        prepared = session.prepare("?x,?y <- ?x :edge+ ?y")
        with pytest.raises(TranslationError):
            prepared.bind(edge=42)


class TestTemplateValidation:
    def test_inferred_params_cover_labels_and_values(self, session):
        prepared = session.prepare("?y <- :start :edge+ ?y")
        assert prepared.params == ("edge", "start")
        assert prepared.label_params == frozenset({"edge"})
        assert prepared.value_params == frozenset({"start"})

    def test_declared_params_must_match_placeholders(self, session):
        with pytest.raises(TranslationError):
            session.prepare("?y <- :start knows+ ?y", params=("start", "end"))
        with pytest.raises(TranslationError):
            session.prepare("?y <- :start knows+ ?y", params=())

    def test_bind_rejects_missing_and_unknown_parameters(self, session):
        prepared = session.prepare("?y <- :start knows+ ?y")
        with pytest.raises(TranslationError):
            prepared.bind()
        with pytest.raises(TranslationError):
            prepared.bind(start="alice", end="bob")

    def test_namespaced_identifiers_are_not_placeholders(self, session):
        session.add_edges("rdfs:subClassOf", [("a", "b")])
        prepared = session.prepare("?x,?y <- ?x rdfs:subClassOf ?y ")
        assert prepared.params == ()
        assert prepared.bind().count() == 1


class TestParameterSentinels:
    def test_template_term_carries_sentinels(self, session):
        prepared = session.prepare("?y <- :start knows+ ?y")
        bound = prepared.bind(start="alice")
        template = bound._plan_term
        assert parameters_of(template) == frozenset({"start"})
        # The executed plan has the concrete value substituted in.
        assert parameters_of(bound.plan().term) == frozenset()

    def test_sentinel_repr_cannot_collide_with_parser_output(self):
        assert " " in repr(Parameter("start"))
