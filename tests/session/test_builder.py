"""The programmatic builder front-end produces the same pipeline results."""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import TranslationError


@pytest.fixture
def session(small_labeled_graph):
    with Session(small_labeled_graph, num_workers=2) as session:
        yield session


class TestBuilderShapes:
    def test_closure_matches_text_front_end(self, session):
        built = session.relation("knows").closure().between("?x", "?y")
        text = session.ucrpq("?x,?y <- ?x knows+ ?y")
        assert built.collect().relation == text.collect().relation
        # Same canonical identity: the two front-ends share cache entries.
        assert built.cache_key == text.cache_key

    def test_concat_and_constant_endpoint(self, session):
        built = (session.relation("livesIn")
                 .concat(session.relation("isLocatedIn").closure())
                 .between("?x", "europe"))
        text = session.ucrpq("?x <- ?x livesIn/isLocatedIn+ europe")
        assert built.collect().relation == text.collect().relation
        assert "C2" in built.classes

    def test_union_of_labels(self, session):
        built = (session.relation("knows").union("livesIn")
                 .between("?x", "?y"))
        text = session.ucrpq("?x,?y <- ?x (knows|livesIn) ?y")
        assert built.collect().relation == text.collect().relation

    def test_string_coercion_in_concat(self, session):
        built = session.relation("knows").closure().concat("livesIn")
        assert str(built) == "knows+/livesIn"

    def test_inverse_label_syntax(self, session):
        direct = session.relation("-knows").between("?x", "?y")
        text = session.ucrpq("?x,?y <- ?x -knows ?y")
        assert direct.collect().relation == text.collect().relation

    def test_inverse_reverses_concatenation(self, session):
        path = session.relation("knows").concat("livesIn").inverse()
        assert str(path) == "-livesIn/-knows"
        forward = session.relation("knows").concat("livesIn").between("?x", "?y")
        backward = path.between("?y", "?x")
        assert forward.collect().relation == backward.collect().relation

    def test_builders_are_immutable(self, session):
        base = session.relation("knows")
        base.closure()
        assert str(base) == "knows"


class TestBuilderValidation:
    def test_two_constants_need_explicit_head(self, session):
        with pytest.raises(TranslationError):
            session.relation("knows").between("alice", "bob")

    def test_explicit_head_must_be_variables(self, session):
        with pytest.raises(TranslationError):
            session.relation("knows").between("?x", "?y", head=("alice",))

    def test_bad_path_operand_is_rejected(self, session):
        with pytest.raises(TranslationError):
            session.relation("knows").concat(42)
