"""Cross-engine differential tests on seeded random graphs.

One query, many ways to answer it: the three distributed fixpoint plans
(Pgld, Pplw^s, Pplw^pg), each on the three executor backends (serial,
threads, processes), the centralized mu-RA evaluator, and the BigDatalog
baseline engine.  Every combination must produce exactly the same relation
— any divergence is either a distribution bug (fixpoint splitting, final
union), a concurrency bug (task isolation, metrics races), or a semantics
bug in one of the engines.
"""

from __future__ import annotations

import pytest

from repro import DistMuRA
from repro.baselines.datalog import BigDatalogEngine
from repro.data.relation import Relation
from repro.distributed import (EXECUTOR_BACKENDS, PGLD, PPLW_POSTGRES,
                               PPLW_SPARK)

ALL_PLANS = (PGLD, PPLW_SPARK, PPLW_POSTGRES)

CLOSURE_QUERY = "?x,?y <- ?x edge+ ?y"
CONCAT_QUERY = "?x,?y <- ?x a+/b+ ?y"


def canonical(relation: Relation) -> tuple:
    """Column-order-independent identity of a relation."""
    order = tuple(sorted(relation.columns))
    indices = [relation.columns.index(column) for column in order]
    return order, frozenset(tuple(row[i] for i in indices)
                            for row in relation.rows)


def centralized_answer(graph, query_text: str) -> tuple:
    engine = DistMuRA(graph, optimize=False)
    term = engine.translate(query_text)
    return canonical(engine.evaluate_centralized(term))


@pytest.fixture(scope="module")
def closure_reference(seeded_random_graph):
    return centralized_answer(seeded_random_graph, CLOSURE_QUERY)


@pytest.fixture(scope="module")
def concat_reference(seeded_two_label_graph):
    return centralized_answer(seeded_two_label_graph, CONCAT_QUERY)


@pytest.fixture(scope="module")
def tree_reference(seeded_tree_graph):
    return centralized_answer(seeded_tree_graph, CLOSURE_QUERY)


class TestPlanExecutorMatrix:
    """Every plan x executor combination equals the centralized answer."""

    @pytest.mark.parametrize("executor", EXECUTOR_BACKENDS)
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure(self, seeded_random_graph, closure_reference,
                     strategy, executor):
        with DistMuRA(seeded_random_graph, num_workers=4, optimize=False,
                      executor=executor) as engine:
            result = engine.query(CLOSURE_QUERY, strategy=strategy)
        assert canonical(result.relation) == closure_reference
        assert result.metrics.executor == executor
        assert result.metrics.tasks_launched > 0

    @pytest.mark.parametrize("executor", ("serial", "threads"))
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_concatenated_closures(self, seeded_two_label_graph,
                                   concat_reference, strategy, executor):
        with DistMuRA(seeded_two_label_graph, num_workers=4, optimize=False,
                      executor=executor) as engine:
            result = engine.query(CONCAT_QUERY, strategy=strategy)
        assert canonical(result.relation) == concat_reference

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_tree_closure(self, seeded_tree_graph, tree_reference, strategy):
        with DistMuRA(seeded_tree_graph, num_workers=3, optimize=False,
                      executor="threads") as engine:
            result = engine.query(CLOSURE_QUERY, strategy=strategy)
        assert canonical(result.relation) == tree_reference


class TestOptimizedPlansStillAgree:
    """The rewriter must not change the answer, whatever the backend."""

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure_with_optimizer(self, seeded_random_graph,
                                    closure_reference, strategy):
        with DistMuRA(seeded_random_graph, num_workers=4, optimize=True,
                      executor="threads") as engine:
            result = engine.query(CLOSURE_QUERY, strategy=strategy)
        assert canonical(result.relation) == closure_reference


class TestCrossEngine:
    """Dist-mu-RA vs the independently implemented Datalog baseline."""

    def test_closure_matches_datalog(self, seeded_random_graph,
                                     closure_reference):
        baseline = BigDatalogEngine(seeded_random_graph, num_workers=4)
        result = baseline.run_query(CLOSURE_QUERY)
        assert canonical(result.relation) == closure_reference

    def test_concat_matches_datalog(self, seeded_two_label_graph,
                                    concat_reference):
        baseline = BigDatalogEngine(seeded_two_label_graph, num_workers=4)
        result = baseline.run_query(CONCAT_QUERY)
        assert canonical(result.relation) == concat_reference

    def test_tree_matches_datalog(self, seeded_tree_graph, tree_reference):
        baseline = BigDatalogEngine(seeded_tree_graph, num_workers=4)
        result = baseline.run_query(CLOSURE_QUERY)
        assert canonical(result.relation) == tree_reference


class TestWorkerCountInvariance:
    """The answer must not depend on how many workers split the fixpoint."""

    @pytest.mark.parametrize("num_workers", (1, 2, 5))
    @pytest.mark.parametrize("strategy", (PPLW_SPARK, PPLW_POSTGRES))
    def test_closure(self, seeded_random_graph, closure_reference,
                     strategy, num_workers):
        with DistMuRA(seeded_random_graph, num_workers=num_workers,
                      optimize=False, executor="threads") as engine:
            result = engine.query(CLOSURE_QUERY, strategy=strategy)
        assert canonical(result.relation) == closure_reference
