"""Cross-front-end differential tests on seeded random graphs.

One query, many ways to answer it — all through one :class:`Session`: the
three distributed fixpoint plans (Pgld, Pplw^s, Pplw^pg), each on the
three executor backends (serial, threads, processes), the centralized
mu-RA evaluator, and the Datalog front-end (``session.datalog``, the same
left-linear translation the BigDatalog baseline uses).  Every combination
must produce exactly the same relation — any divergence is either a
distribution bug (fixpoint splitting, final union), a concurrency bug
(task isolation, metrics races), or a semantics bug in one of the
front-end compilers.
"""

from __future__ import annotations

import pytest

from repro import Session
from repro.data.relation import Relation
from repro.distributed import (EXECUTOR_BACKENDS, PGLD, PPLW_POSTGRES,
                               PPLW_SPARK)

ALL_PLANS = (PGLD, PPLW_SPARK, PPLW_POSTGRES)

CLOSURE_QUERY = "?x,?y <- ?x edge+ ?y"
CONCAT_QUERY = "?x,?y <- ?x a+/b+ ?y"


def canonical(relation: Relation) -> tuple:
    """Column-order-independent identity of a relation."""
    order = tuple(sorted(relation.columns))
    indices = [relation.columns.index(column) for column in order]
    return order, frozenset(tuple(row[i] for i in indices)
                            for row in relation.rows)


def centralized_answer(graph, query_text: str) -> tuple:
    session = Session(graph, optimize=False)
    term = session.ucrpq(query_text).term
    return canonical(session.evaluate_centralized(term))


@pytest.fixture(scope="module")
def closure_reference(seeded_random_graph):
    return centralized_answer(seeded_random_graph, CLOSURE_QUERY)


@pytest.fixture(scope="module")
def concat_reference(seeded_two_label_graph):
    return centralized_answer(seeded_two_label_graph, CONCAT_QUERY)


@pytest.fixture(scope="module")
def tree_reference(seeded_tree_graph):
    return centralized_answer(seeded_tree_graph, CLOSURE_QUERY)


class TestPlanExecutorMatrix:
    """Every plan x executor combination equals the centralized answer."""

    @pytest.mark.parametrize("executor", EXECUTOR_BACKENDS)
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure(self, seeded_random_graph, closure_reference,
                     strategy, executor):
        with Session(seeded_random_graph, num_workers=4, optimize=False,
                     executor=executor) as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference
        assert result.metrics.executor == executor
        assert result.metrics.tasks_launched > 0

    @pytest.mark.parametrize("executor", ("serial", "threads"))
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_concatenated_closures(self, seeded_two_label_graph,
                                   concat_reference, strategy, executor):
        with Session(seeded_two_label_graph, num_workers=4, optimize=False,
                     executor=executor) as session:
            result = session.ucrpq(CONCAT_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == concat_reference

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_tree_closure(self, seeded_tree_graph, tree_reference, strategy):
        with Session(seeded_tree_graph, num_workers=3, optimize=False,
                     executor="threads") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == tree_reference


class TestOptimizedPlansStillAgree:
    """The rewriter must not change the answer, whatever the backend."""

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure_with_optimizer(self, seeded_random_graph,
                                    closure_reference, strategy):
        with Session(seeded_random_graph, num_workers=4, optimize=True,
                     executor="threads") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference


class TestCrossFrontEnd:
    """The UCRPQ and Datalog front-ends agree over one shared session."""

    def test_closure_matches_datalog(self, seeded_random_graph,
                                     closure_reference):
        with Session(seeded_random_graph, num_workers=4) as session:
            result = session.datalog(CLOSURE_QUERY).collect()
        assert canonical(result.relation) == closure_reference

    def test_concat_matches_datalog(self, seeded_two_label_graph,
                                    concat_reference):
        with Session(seeded_two_label_graph, num_workers=4) as session:
            result = session.datalog(CONCAT_QUERY).collect()
        assert canonical(result.relation) == concat_reference

    def test_tree_matches_datalog(self, seeded_tree_graph, tree_reference):
        with Session(seeded_tree_graph, num_workers=4) as session:
            result = session.datalog(CLOSURE_QUERY).collect()
        assert canonical(result.relation) == tree_reference

    def test_both_front_ends_one_session(self, seeded_random_graph,
                                         closure_reference):
        """Front-ends share a session (and its caches) without interfering."""
        with Session(seeded_random_graph, num_workers=4) as session:
            mu = session.ucrpq(CLOSURE_QUERY).collect().relation
            datalog = session.datalog(CLOSURE_QUERY).collect().relation
            assert canonical(mu) == canonical(datalog) == closure_reference


class TestWorkerCountInvariance:
    """The answer must not depend on how many workers split the fixpoint."""

    @pytest.mark.parametrize("num_workers", (1, 2, 5))
    @pytest.mark.parametrize("strategy", (PPLW_SPARK, PPLW_POSTGRES))
    def test_closure(self, seeded_random_graph, closure_reference,
                     strategy, num_workers):
        with Session(seeded_random_graph, num_workers=num_workers,
                     optimize=False, executor="threads") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference
