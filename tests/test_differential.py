"""Cross-front-end differential tests on seeded random graphs.

One query, many ways to answer it — all through one :class:`Session`: the
three distributed fixpoint plans (Pgld, Pplw^s, Pplw^pg), each on the
three executor backends (serial, threads, processes), the centralized
mu-RA evaluator, and the Datalog front-end (``session.datalog``, the same
left-linear translation the BigDatalog baseline uses).  Every combination
must produce exactly the same relation — any divergence is either a
distribution bug (fixpoint splitting, final union), a concurrency bug
(task isolation, metrics races), or a semantics bug in one of the
front-end compilers.
"""

from __future__ import annotations

import pytest

from repro import Session
from repro.data import compatibility_mode, row_mode
from repro.data.relation import Relation
from repro.datasets import uniprot_graph
from repro.distributed import (EXECUTOR_BACKENDS, PGLD, PPLW_POSTGRES,
                               PPLW_SPARK)
from repro.workloads import uniprot_queries

ALL_PLANS = (PGLD, PPLW_SPARK, PPLW_POSTGRES)

CLOSURE_QUERY = "?x,?y <- ?x edge+ ?y"
CONCAT_QUERY = "?x,?y <- ?x a+/b+ ?y"


def canonical(relation: Relation) -> tuple:
    """Column-order-independent identity of a relation."""
    order = tuple(sorted(relation.columns))
    indices = [relation.columns.index(column) for column in order]
    return order, frozenset(tuple(row[i] for i in indices)
                            for row in relation.rows)


def centralized_answer(graph, query_text: str) -> tuple:
    session = Session(graph, optimize=False)
    term = session.ucrpq(query_text).term
    return canonical(session.evaluate_centralized(term))


@pytest.fixture(scope="module")
def closure_reference(seeded_random_graph):
    return centralized_answer(seeded_random_graph, CLOSURE_QUERY)


@pytest.fixture(scope="module")
def concat_reference(seeded_two_label_graph):
    return centralized_answer(seeded_two_label_graph, CONCAT_QUERY)


@pytest.fixture(scope="module")
def tree_reference(seeded_tree_graph):
    return centralized_answer(seeded_tree_graph, CLOSURE_QUERY)


class TestPlanExecutorMatrix:
    """Every plan x executor combination equals the centralized answer."""

    @pytest.mark.parametrize("executor", EXECUTOR_BACKENDS)
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure(self, seeded_random_graph, closure_reference,
                     strategy, executor):
        with Session(seeded_random_graph, num_workers=4, optimize=False,
                     executor=executor) as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference
        assert result.metrics.executor == executor
        assert result.metrics.tasks_launched > 0

    @pytest.mark.parametrize("executor", ("serial", "threads"))
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_concatenated_closures(self, seeded_two_label_graph,
                                   concat_reference, strategy, executor):
        with Session(seeded_two_label_graph, num_workers=4, optimize=False,
                     executor=executor) as session:
            result = session.ucrpq(CONCAT_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == concat_reference

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_tree_closure(self, seeded_tree_graph, tree_reference, strategy):
        with Session(seeded_tree_graph, num_workers=3, optimize=False,
                     executor="threads") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == tree_reference


class TestOptimizedPlansStillAgree:
    """The rewriter must not change the answer, whatever the backend."""

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure_with_optimizer(self, seeded_random_graph,
                                    closure_reference, strategy):
        with Session(seeded_random_graph, num_workers=4, optimize=True,
                     executor="threads") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference


class TestCrossFrontEnd:
    """The UCRPQ and Datalog front-ends agree over one shared session."""

    def test_closure_matches_datalog(self, seeded_random_graph,
                                     closure_reference):
        with Session(seeded_random_graph, num_workers=4) as session:
            result = session.datalog(CLOSURE_QUERY).collect()
        assert canonical(result.relation) == closure_reference

    def test_concat_matches_datalog(self, seeded_two_label_graph,
                                    concat_reference):
        with Session(seeded_two_label_graph, num_workers=4) as session:
            result = session.datalog(CONCAT_QUERY).collect()
        assert canonical(result.relation) == concat_reference

    def test_tree_matches_datalog(self, seeded_tree_graph, tree_reference):
        with Session(seeded_tree_graph, num_workers=4) as session:
            result = session.datalog(CLOSURE_QUERY).collect()
        assert canonical(result.relation) == tree_reference

    def test_both_front_ends_one_session(self, seeded_random_graph,
                                         closure_reference):
        """Front-ends share a session (and its caches) without interfering."""
        with Session(seeded_random_graph, num_workers=4) as session:
            mu = session.ucrpq(CLOSURE_QUERY).collect().relation
            datalog = session.datalog(CLOSURE_QUERY).collect().relation
            assert canonical(mu) == canonical(datalog) == closure_reference


#: Execution-engine axis: the columnar kernels (the default), the indexed
#: row engine (``row_mode``), and the seed-era compatibility mode (which
#: implies the row engine and disables every cache).
ENGINE_MODES = ("columnar", "row", "compat")

#: Recursive Uniprot workload queries small enough for a unit-test graph.
UNIPROT_DIFFERENTIAL_QIDS = ("Q42", "Q45", "Q47")


def run_in_mode(mode: str, fn):
    if mode == "row":
        with row_mode():
            return fn()
    if mode == "compat":
        with compatibility_mode():
            return fn()
    return fn()


@pytest.fixture(scope="module")
def uniprot_differential_graph():
    return uniprot_graph(num_edges=400, seed=11)


class TestColumnarAxis:
    """Columnar kernels vs row engine vs compatibility mode.

    The default-on columnar path is already exercised by every other test
    in this module; this class pins the *comparisons*: whatever the plan,
    executor or workload query, flipping the engine must not change one
    row.  The ``processes`` executor additionally proves that kernel
    closures and value dictionaries pickle (or rebuild) cleanly across
    process boundaries.
    """

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_closure_every_plan(self, seeded_random_graph, closure_reference,
                                strategy, mode):
        def run():
            with Session(seeded_random_graph, num_workers=4,
                         optimize=False) as session:
                return session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        result = run_in_mode(mode, run)
        assert canonical(result.relation) == closure_reference

    @pytest.mark.parametrize("executor", EXECUTOR_BACKENDS)
    def test_concat_columnar_vs_row_per_executor(self, seeded_two_label_graph,
                                                 concat_reference, executor):
        def run():
            with Session(seeded_two_label_graph, num_workers=4,
                         optimize=False, executor=executor) as session:
                return session.ucrpq(CONCAT_QUERY).collect(strategy=PGLD)
        columnar = run_in_mode("columnar", run)
        row = run_in_mode("row", run)
        assert (canonical(columnar.relation) == canonical(row.relation)
                == concat_reference)

    @pytest.mark.parametrize("qid", UNIPROT_DIFFERENTIAL_QIDS)
    def test_uniprot_workload_queries(self, uniprot_differential_graph,
                                      qid):
        query = {q.qid: q for q in
                 uniprot_queries(uniprot_differential_graph,
                                 subset=(qid,))}[qid]

        def run():
            with Session(uniprot_differential_graph, num_workers=3,
                         optimize=True, executor="threads") as session:
                return session.ucrpq(query.text).collect()
        results = {mode: canonical(run_in_mode(mode, run).relation)
                   for mode in ENGINE_MODES}
        assert results["columnar"] == results["row"] == results["compat"]

    @pytest.mark.parametrize("strategy", ALL_PLANS)
    def test_processes_executor_pickles_kernels(self, seeded_random_graph,
                                                closure_reference, strategy):
        with Session(seeded_random_graph, num_workers=2, optimize=False,
                     executor="processes") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference


class TestWorkerCountInvariance:
    """The answer must not depend on how many workers split the fixpoint."""

    @pytest.mark.parametrize("num_workers", (1, 2, 5))
    @pytest.mark.parametrize("strategy", (PPLW_SPARK, PPLW_POSTGRES))
    def test_closure(self, seeded_random_graph, closure_reference,
                     strategy, num_workers):
        with Session(seeded_random_graph, num_workers=num_workers,
                     optimize=False, executor="threads") as session:
            result = session.ucrpq(CLOSURE_QUERY).collect(strategy=strategy)
        assert canonical(result.relation) == closure_reference
