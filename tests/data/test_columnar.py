"""Unit tests of the columnar layer: value dictionaries, encoded
relations, the delta accumulator and the engine switch."""

from __future__ import annotations

import pickle
import threading
from array import array

from repro.data.columnar import (SNAPSHOT_DICTIONARY_KEY, ColumnarBatch,
                                 ColumnarDeltaAccumulator, ColumnarRelation,
                                 ValueDictionary, columnar_enabled, row_mode,
                                 set_columnar_enabled, snapshot_dictionary)
from repro.data.relation import Relation
from repro.data.snapshot import DatabaseSnapshot
from repro.data.storage import compatibility_mode


def edges(pairs):
    return Relation.from_pairs(pairs, columns=("src", "trg"))


class TestValueDictionary:
    def test_interns_each_value_once(self):
        dictionary = ValueDictionary()
        a = dictionary.encode("a")
        b = dictionary.encode("b")
        assert a != b
        assert dictionary.encode("a") == a
        assert len(dictionary) == 2
        assert dictionary.decode(a) == "a"
        assert dictionary.lookup("b") == b
        assert dictionary.lookup("missing") is None

    def test_encode_column_matches_encode(self):
        dictionary = ValueDictionary()
        codes = dictionary.encode_column(["x", "y", "x", "z"])
        assert isinstance(codes, array)
        assert list(codes) == [dictionary.encode(v)
                               for v in ("x", "y", "x", "z")]

    def test_concurrent_interning_assigns_unique_codes(self):
        dictionary = ValueDictionary()
        results = {}

        def intern(worker):
            results[worker] = [dictionary.encode(i % 50) for i in range(500)]

        threads = [threading.Thread(target=intern, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(dictionary) == 50
        first = results[0]
        assert all(results[w] == first for w in results)

    def test_pickle_round_trip_keeps_codes(self):
        dictionary = ValueDictionary()
        codes = {v: dictionary.encode(v) for v in ("a", "b", "c")}
        clone = pickle.loads(pickle.dumps(dictionary))
        assert all(clone.encode(v) == code for v, code in codes.items())
        # And the clone can keep interning new values.
        assert clone.encode("d") == len(codes)


class TestSnapshotDictionary:
    def test_snapshot_memoizes_one_dictionary(self):
        snapshot = DatabaseSnapshot({"E": edges([(1, 2)])})
        first = snapshot_dictionary(snapshot)
        assert snapshot_dictionary(snapshot) is first
        assert snapshot.derived(SNAPSHOT_DICTIONARY_KEY,
                                lambda _: None) is first

    def test_plain_dict_gets_fresh_dictionary(self):
        database = {"E": edges([(1, 2)])}
        assert snapshot_dictionary(database) is not snapshot_dictionary(database)


class TestColumnarRelation:
    def test_round_trip_is_identity(self):
        relation = edges([(1, 2), (2, 3), (3, 1)])
        encoded = relation.columnar(ValueDictionary())
        assert len(encoded) == 3
        assert encoded.to_relation() == relation

    def test_empty_relation_round_trips(self):
        relation = Relation.empty(("src", "trg"))
        encoded = ColumnarRelation.from_relation(relation, ValueDictionary())
        assert len(encoded) == 0
        assert encoded.to_relation() == relation

    def test_wide_relation_round_trips(self):
        relation = Relation.from_dicts(
            [{"a": 1, "b": 2, "c": 3}, {"a": 4, "b": 5, "c": 6}])
        encoded = relation.columnar(ValueDictionary())
        assert encoded.to_relation() == relation

    def test_encoding_is_memoized_per_dictionary(self):
        relation = edges([(1, 2)])
        dictionary = ValueDictionary()
        assert relation.columnar(dictionary) is relation.columnar(dictionary)
        other = ValueDictionary()
        assert relation.columnar(other) is not relation.columnar(dictionary)

    def test_index_on_is_memoized_and_maps_codes_to_rows(self):
        dictionary = ValueDictionary()
        encoded = edges([(1, 2), (1, 3), (2, 3)]).columnar(dictionary)
        assert not encoded.has_index((0,))
        index = encoded.index_on((0,))
        assert encoded.has_index((0,))
        assert encoded.index_on((0,)) is index
        rows_of_one = index[dictionary.encode(1)]
        assert len(rows_of_one) == 2

    def test_pickle_drops_index_cache_but_keeps_columns(self):
        dictionary = ValueDictionary()
        encoded = edges([(1, 2), (2, 3)]).columnar(dictionary)
        encoded.index_on((0,))
        clone = pickle.loads(pickle.dumps(encoded))
        assert not clone.has_index((0,))
        assert clone.to_relation() == encoded.to_relation()


class TestColumnarDeltaAccumulator:
    def _batch(self, rows):
        columns = list(zip(*rows)) if rows else [[], []]
        return ColumnarBatch(("src", "trg"),
                             [array("q", column) for column in columns])

    def test_absorb_returns_only_new_rows(self):
        accumulator = ColumnarDeltaAccumulator(self._batch([(0, 1), (1, 2)]))
        delta = accumulator.absorb(self._batch([(1, 2), (2, 3), (2, 3)]))
        assert sorted(zip(*delta.arrays)) == [(2, 3)]
        assert len(accumulator) == 3

    def test_absorb_of_known_rows_returns_empty_batch(self):
        accumulator = ColumnarDeltaAccumulator(self._batch([(0, 1)]))
        delta = accumulator.absorb(self._batch([(0, 1)]))
        assert len(delta) == 0
        assert delta.columns == ("src", "trg")

    def test_relation_decodes_accumulated_rows_once(self):
        dictionary = ValueDictionary()
        seed = edges([(0, 1), (1, 2)]).columnar(dictionary)
        accumulator = ColumnarDeltaAccumulator(seed.batch())
        accumulator.absorb(self._batch(
            [(dictionary.encode(0), dictionary.encode(2))]))
        assert accumulator.relation(dictionary) == edges(
            [(0, 1), (1, 2), (0, 2)])

    def test_wide_rows_decode_through_the_generic_path(self):
        dictionary = ValueDictionary()
        relation = Relation.from_dicts([{"a": 1, "b": 2, "c": 3}])
        encoded = relation.columnar(dictionary)
        accumulator = ColumnarDeltaAccumulator(encoded.batch())
        assert accumulator.relation(dictionary) == relation


class TestEngineSwitch:
    def test_columnar_enabled_by_default(self):
        assert columnar_enabled()

    def test_row_mode_disables_and_restores(self):
        with row_mode():
            assert not columnar_enabled()
        assert columnar_enabled()

    def test_set_columnar_enabled_returns_previous(self):
        assert set_columnar_enabled(False) is True
        try:
            assert not columnar_enabled()
        finally:
            set_columnar_enabled(True)

    def test_compatibility_mode_implies_row_engine(self):
        with compatibility_mode():
            assert not columnar_enabled()
        assert columnar_enabled()
