"""LabeledGraph ingestion: bulk construction and relational round-trips."""

from __future__ import annotations

import pytest

from repro.data import LabeledGraph, Relation
from repro.errors import DatasetError, SchemaError


def triples():
    return [
        ("alice", "knows", "bob"),
        ("bob", "knows", "carol"),
        ("alice", "livesIn", "lyon"),
        ("lyon", "isLocatedIn", "france"),
    ]


class TestFromRelation:
    def test_round_trips_through_facts(self):
        graph = LabeledGraph.from_triples(triples(), name="g")
        rebuilt = LabeledGraph.from_relation(graph.facts(), name="g")
        assert set(rebuilt.iter_triples()) == set(graph.iter_triples())
        assert rebuilt.nodes == graph.nodes
        assert rebuilt.labels == graph.labels

    def test_bulk_path_matches_per_edge_construction(self):
        """from_relation no longer round-trips rows through to_dicts();
        the bulk path must build the identical graph."""
        facts = LabeledGraph.from_triples(triples()).facts()
        bulk = LabeledGraph.from_relation(facts)
        slow = LabeledGraph()
        for row in facts.to_dicts():
            slow.add_edge(row["src"], row["pred"], row["trg"])
        assert set(bulk.iter_triples()) == set(slow.iter_triples())
        assert bulk.nodes == slow.nodes

    def test_rejects_wrong_schema(self):
        with pytest.raises(SchemaError):
            LabeledGraph.from_relation(
                Relation.from_pairs([("a", "b")], columns=("src", "trg")))

    def test_bulk_add_validates_labels(self):
        graph = LabeledGraph()
        with pytest.raises(DatasetError):
            graph.add_pairs("", [("a", "b")])
        with pytest.raises(DatasetError):
            graph.add_pairs("-inverse", [("a", "b")])

    def test_add_pairs_extends_nodes_and_edges(self):
        graph = LabeledGraph()
        graph.add_pairs("knows", [("a", "b"), ("b", "c")])
        graph.add_pairs("knows", [("b", "c"), ("c", "d")])  # dedup
        assert graph.edge_count("knows") == 3
        assert graph.nodes == frozenset("abcd")

    def test_add_pairs_validates_before_mutating(self):
        """A malformed pair must leave the graph completely untouched,
        and an empty bulk-add must not phantom-register the label."""
        graph = LabeledGraph()
        graph.add_pairs("knows", [("a", "b")])
        with pytest.raises(ValueError):
            graph.add_pairs("knows", [("c", "d"), ("x", "y", "z")])
        assert graph.edges("knows").to_pairs("src", "trg") == {("a", "b")}
        assert graph.nodes == frozenset("ab")
        graph.add_pairs("ghost", [])
        assert graph.labels == ("knows",)
        assert "ghost" not in graph.relations()


class TestRelationalViews:
    def test_edges_and_inverse_views(self):
        graph = LabeledGraph.from_triples(triples())
        forward = graph.edges("knows")
        assert forward.columns == ("src", "trg")
        assert forward.to_pairs("src", "trg") == {("alice", "bob"),
                                                  ("bob", "carol")}
        inverse = graph.edges("-knows")
        assert inverse.to_pairs("src", "trg") == {("bob", "alice"),
                                                  ("carol", "bob")}
        assert graph.edges("missing") == Relation.empty(("src", "trg"))

    def test_edges_with_custom_column_names(self):
        graph = LabeledGraph.from_triples(triples())
        relation = graph.edges("knows", src="b", trg="a")
        # Schema is sorted; values must still map src->b, trg->a.
        assert relation.columns == ("a", "b")
        assert relation.to_pairs("b", "a") == {("alice", "bob"),
                                               ("bob", "carol")}

    def test_facts_covers_every_triple(self):
        graph = LabeledGraph.from_triples(triples())
        facts = graph.facts()
        assert facts.columns == ("pred", "src", "trg")
        assert len(facts) == len(triples())
        assert facts.to_pairs("src", "trg") == {
            (s, t) for s, _, t in triples()}
        empty = LabeledGraph()
        assert empty.facts() == Relation.empty(("pred", "src", "trg"))
