"""StatisticsCatalog invalidation/refresh semantics (mutation support)."""

from __future__ import annotations

from repro.cost.cost_model import CostModel
from repro.data.relation import Relation
from repro.data.stats import RelationStats, StatisticsCatalog
from repro.algebra.terms import RelVar


def edges(pairs):
    return Relation.from_pairs(pairs, columns=("src", "trg"))


def test_invalidate_drops_entry_and_falls_back_to_default():
    catalog = StatisticsCatalog({"E": edges([(1, 2), (2, 3)])})
    assert catalog.get("E").cardinality == 2
    assert catalog.invalidate("E") is True
    assert "E" not in catalog
    # Conservative default, not the stale value.
    assert catalog.get("E").cardinality == 1000
    assert catalog.invalidate("E") is False


def test_refresh_recomputes_statistics():
    relation = edges([(1, 2), (2, 3)])
    catalog = StatisticsCatalog({"E": relation})
    grown = relation.union(edges([(3, 4), (4, 5), (5, 6)]))
    stats = catalog.refresh("E", grown)
    assert stats.cardinality == 5
    assert catalog.get("E").cardinality == 5
    assert catalog.get("E").distinct("src") == 5


def test_refresh_registers_unknown_relation():
    catalog = StatisticsCatalog()
    catalog.refresh("S", edges([(1, 2)]))
    assert catalog.get("S").cardinality == 1
    assert "S" in catalog.names()


def test_invalidate_does_not_touch_other_entries():
    catalog = StatisticsCatalog({"E": edges([(1, 2)]),
                                 "S": edges([(1, 2), (2, 3)])})
    catalog.invalidate("E")
    assert catalog.get("S").cardinality == 2


def test_cost_estimates_follow_catalog_refresh():
    """The cost model sees the new statistics after a refresh."""
    relation = edges([(i, i + 1) for i in range(4)])
    catalog = StatisticsCatalog({"E": relation})
    model = CostModel(catalog=catalog)
    cost_before = model.cost(RelVar("E"))
    bigger = relation.union(edges([(i, i + 2) for i in range(400)]))
    catalog.refresh("E", bigger)
    cost_after = model.cost(RelVar("E"))
    assert cost_after > cost_before


def test_register_stats_overrides_computed_entry():
    catalog = StatisticsCatalog({"E": edges([(1, 2)])})
    catalog.register_stats("E", RelationStats(cardinality=77))
    assert catalog.get("E").cardinality == 77
    # refresh wins back from the relation itself.
    catalog.refresh("E", edges([(1, 2), (2, 3)]))
    assert catalog.get("E").cardinality == 2
