"""Unit tests of the relational data model (Tup, Relation, predicates)."""

from __future__ import annotations

import pytest

from repro.data import (And, ColumnEq, Compare, Eq, In, Not, Or, Relation,
                        TruePredicate, Tup, conjunction)
from repro.errors import SchemaError


class TestTup:
    def test_mapping_behaviour(self):
        t = Tup(src=1, dst=2)
        assert t["src"] == 1
        assert len(t) == 2
        assert dict(t) == {"src": 1, "dst": 2}

    def test_equality_and_hash_are_order_insensitive(self):
        assert Tup(a=1, b=2) == Tup({"b": 2, "a": 1})
        assert hash(Tup(a=1, b=2)) == hash(Tup(b=2, a=1))

    def test_rename_drop_project_merge(self):
        t = Tup(src=1, dst=2)
        assert t.rename("dst", "trg") == Tup(src=1, trg=2)
        assert t.drop("dst") == Tup(src=1)
        assert t.project(("src",)) == Tup(src=1)
        assert t.merge(Tup(dst=2, extra=3)) == Tup(src=1, dst=2, extra=3)

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            Tup(src=1).merge(Tup(src=2))

    def test_invalid_column_names_rejected(self):
        with pytest.raises(TypeError):
            Tup({"": 1})


class TestRelationConstruction:
    def test_from_dicts_and_pairs_agree(self):
        from_dicts = Relation.from_dicts([{"src": 1, "trg": 2}])
        from_pairs = Relation.from_pairs([(1, 2)], columns=("src", "trg"))
        assert from_dicts == from_pairs

    def test_duplicate_rows_are_eliminated(self):
        relation = Relation.from_pairs([(1, 2), (1, 2)], columns=("a", "b"))
        assert len(relation) == 1

    def test_schema_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts([{"a": 1}, {"b": 2}])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "a"), [])

    def test_empty_relation_needs_explicit_schema(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts([])
        assert len(Relation.empty(("a",))) == 0

    def test_membership(self):
        relation = Relation.from_pairs([(1, 2)], columns=("src", "trg"))
        assert {"src": 1, "trg": 2} in relation
        assert {"src": 2, "trg": 1} not in relation


class TestRelationOperators:
    def setup_method(self):
        self.r = Relation.from_dicts([
            {"a": 1, "b": 10}, {"a": 2, "b": 20}, {"a": 3, "b": 20}])
        self.s = Relation.from_dicts([
            {"b": 10, "c": "x"}, {"b": 20, "c": "y"}, {"b": 30, "c": "z"}])

    def test_natural_join(self):
        joined = self.r.natural_join(self.s)
        assert joined.columns == ("a", "b", "c")
        assert len(joined) == 3
        assert {"a": 2, "b": 20, "c": "y"} in joined

    def test_join_without_common_columns_is_cartesian(self):
        left = Relation.from_dicts([{"a": 1}, {"a": 2}])
        right = Relation.from_dicts([{"b": 3}])
        assert len(left.natural_join(right)) == 2

    def test_antijoin(self):
        result = self.r.antijoin(Relation.from_dicts([{"b": 20, "c": "y"}]))
        assert result.to_dicts() == [{"a": 1, "b": 10}]

    def test_antijoin_no_common_columns(self):
        empty_right = Relation.empty(("z",))
        assert self.r.antijoin(empty_right) == self.r
        nonempty_right = Relation.from_dicts([{"z": 1}])
        assert len(self.r.antijoin(nonempty_right)) == 0

    def test_union_and_difference_require_same_schema(self):
        with pytest.raises(SchemaError):
            self.r.union(self.s)
        with pytest.raises(SchemaError):
            self.r.difference(self.s)

    def test_filter_with_predicates(self):
        assert len(self.r.filter(Eq("b", 20))) == 2
        assert len(self.r.filter(Compare("a", ">", 1))) == 2
        assert len(self.r.filter(In("a", {1, 3}))) == 2
        assert len(self.r.filter(And(Eq("b", 20), Eq("a", 2)))) == 1
        assert len(self.r.filter(Or(Eq("a", 1), Eq("a", 2)))) == 2
        assert len(self.r.filter(Not(Eq("b", 20)))) == 1
        assert len(self.r.filter(TruePredicate())) == 3

    def test_filter_missing_column_raises(self):
        with pytest.raises(SchemaError):
            self.r.filter(Eq("missing", 1))

    def test_column_equality_predicate(self):
        relation = Relation.from_dicts([{"a": 1, "b": 1}, {"a": 1, "b": 2}])
        assert len(relation.filter(ColumnEq("a", "b"))) == 1

    def test_rename(self):
        renamed = self.r.rename("b", "value")
        assert renamed.columns == ("a", "value")
        with pytest.raises(SchemaError):
            self.r.rename("missing", "x")
        with pytest.raises(SchemaError):
            self.r.rename("a", "b")

    def test_rename_many_swap(self):
        relation = Relation.from_dicts([{"a": 1, "b": 2}])
        swapped = relation.rename_many({"a": "b", "b": "a"})
        assert swapped.to_dicts() == [{"a": 2, "b": 1}]

    def test_antiproject_deduplicates(self):
        reduced = self.r.antiproject("a")
        assert reduced.columns == ("b",)
        assert len(reduced) == 2

    def test_project(self):
        assert self.r.project(("a",)).column_values("a") == {1, 2, 3}

    def test_conjunction_helper(self):
        predicate = conjunction([Eq("a", 1), Eq("b", 10)])
        assert len(self.r.filter(predicate)) == 1
        assert isinstance(conjunction([]), TruePredicate)


class TestPartitioning:
    def test_round_robin_covers_all_rows(self):
        relation = Relation.from_pairs([(i, i + 1) for i in range(20)],
                                       columns=("src", "trg"))
        parts = relation.split_round_robin(4)
        assert len(parts) == 4
        assert sum(len(part) for part in parts) == 20

    def test_hash_partitioning_is_key_consistent(self):
        relation = Relation.from_pairs(
            [(i % 5, i) for i in range(50)], columns=("src", "trg"))
        parts = relation.split_by_columns(("src",), 3)
        for value in range(5):
            holders = [index for index, part in enumerate(parts)
                       if value in part.column_values("src")]
            assert len(holders) <= 1

    def test_invalid_partition_counts(self):
        relation = Relation.from_pairs([(1, 2)], columns=("src", "trg"))
        with pytest.raises(ValueError):
            relation.split_round_robin(0)
        with pytest.raises(SchemaError):
            relation.split_by_columns(("missing",), 2)


class TestGraphAndIO:
    def test_graph_relations_include_inverse_and_facts(self, small_labeled_graph):
        database = small_labeled_graph.relations()
        assert "knows" in database and "-knows" in database and "facts" in database
        assert database["-knows"].to_pairs("src", "trg") == {
            (b, a) for a, b in database["knows"].to_pairs("src", "trg")}
        assert len(database["facts"]) == len(small_labeled_graph)

    def test_graph_tsv_roundtrip(self, small_labeled_graph, tmp_path):
        from repro.data import read_graph_tsv, write_graph_tsv
        path = tmp_path / "graph.tsv"
        write_graph_tsv(small_labeled_graph, path)
        loaded = read_graph_tsv(path)
        assert set(loaded.iter_triples()) == set(small_labeled_graph.iter_triples())

    def test_relation_tsv_roundtrip(self, paper_edges, tmp_path):
        from repro.data import read_relation_tsv, write_relation_tsv
        path = tmp_path / "edges.tsv"
        write_relation_tsv(paper_edges, path)
        loaded = read_relation_tsv(path, types={"src": int, "trg": int})
        assert loaded == paper_edges

    def test_stats_catalog(self, paper_edges):
        from repro.data import StatisticsCatalog
        catalog = StatisticsCatalog({"E": paper_edges})
        stats = catalog.get("E")
        assert stats.cardinality == len(paper_edges)
        assert stats.distinct("src") == len(paper_edges.column_values("src"))
        assert catalog.get("unknown").cardinality == 1000
