"""Unit tests of the storage engine: trusted construction, hash indexes,
builders, delta accumulators and the compatibility switch."""

from __future__ import annotations

import pytest

from repro.data.relation import Relation
from repro.data.storage import (DeltaAccumulator, HashIndex, RelationBuilder,
                                caching_enabled, compatibility_mode,
                                set_caching_enabled)
from repro.errors import SchemaError


def edges(pairs):
    return Relation.from_pairs(pairs, columns=("src", "trg"))


class TestTrustedConstruction:
    def test_adopts_frozenset_without_copying(self):
        rows = frozenset({(1, 2), (2, 3)})
        relation = Relation._from_trusted(("src", "trg"), rows)
        assert relation.rows is rows
        assert relation.columns == ("src", "trg")

    def test_freezes_other_iterables(self):
        relation = Relation._from_trusted(("src", "trg"), {(1, 2)})
        assert isinstance(relation.rows, frozenset)
        assert relation == edges([(1, 2)])

    def test_equals_validated_construction(self):
        validated = Relation(("src", "trg"), [(1, 2), (2, 3)])
        trusted = Relation._from_trusted(("src", "trg"),
                                         frozenset({(1, 2), (2, 3)}))
        assert trusted == validated
        assert hash(trusted) == hash(validated)

    def test_operators_produce_working_relations(self):
        left = edges([(1, 2), (2, 3)])
        right = edges([(2, 3), (3, 4)])
        union = left.union(right)
        assert union.rename("trg", "mid").columns == ("mid", "src")
        assert len(union.difference(left)) == 1
        assert union.project(("src",)).column_values("src") == {1, 2, 3}


class TestHashIndex:
    def test_build_and_probe(self):
        index = HashIndex([(1, 2), (1, 3), (4, 5)], (0,))
        assert sorted(index.probe((1,))) == [(1, 2), (1, 3)]
        assert index.probe((9,)) == []
        assert (4,) in index and (9,) not in index
        assert len(index) == 3

    def test_composite_keys(self):
        index = HashIndex([(1, 2, "a"), (1, 3, "a")], (0, 2))
        assert sorted(index.probe((1, "a"))) == [(1, 2, "a"), (1, 3, "a")]
        assert index.probe((1, "b")) == []

    def test_extend_is_incremental(self):
        index = HashIndex([(1, 2)], (0,))
        index.extend([(1, 9), (3, 4)])
        assert sorted(index.probe((1,))) == [(1, 2), (1, 9)]
        assert index.probe((3,)) == [(3, 4)]
        assert len(index) == 3

    def test_mutating_a_missed_probe_cannot_poison_later_probes(self):
        """Regression: misses used to return one shared empty-list
        singleton, so a caller accumulating into a probe result (as the
        Datalog engine does) silently corrupted every future empty probe
        of every index in the process."""
        index = HashIndex([(1, 2)], (0,))
        miss = index.probe((9,))
        miss.append(("poisoned",))
        assert index.probe((9,)) == []
        other = HashIndex([(7, 8)], (0,))
        assert other.probe((0,)) == []
        # The index itself is also untouched: the key is still a miss.
        assert (9,) not in index and len(index) == 1


class TestRelationIndexes:
    def test_memoized_on_the_relation(self):
        relation = edges([(1, 2), (2, 3)])
        assert not relation.has_index(("src",))
        first = relation.index_on(("src",))
        assert relation.has_index(("src",))
        assert relation.index_on(("src",)) is first

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            edges([(1, 2)]).index_on(("nope",))

    def test_join_probes_the_warmed_side(self):
        """With an index warmed on one side, the join must reuse it."""
        probe = edges([(1, 2)]).rename_many({"src": "a", "trg": "src"})
        build = edges([(2, 5), (2, 6), (3, 7)])
        build.index_on(("src",))
        joined = probe.natural_join(build)
        assert joined.to_pairs("a", "trg") == {(1, 5), (1, 6)}
        # No index was created on the probe side by the join itself.
        assert not probe.has_index(("src",))

    def test_equality_filter_uses_existing_index(self):
        from repro.data.predicates import Eq
        relation = edges([(1, 2), (1, 3), (2, 4)])
        relation.index_on(("src",))
        filtered = relation.filter(Eq("src", 1))
        assert filtered == edges([(1, 2), (1, 3)])
        # And without an index the scan path gives the same answer.
        assert edges([(1, 2), (1, 3), (2, 4)]).filter(Eq("src", 1)) == filtered


class TestRelationBuilder:
    def test_builds_through_trusted_path(self):
        builder = RelationBuilder(("trg", "src"))
        builder.add_row((1, 2))
        builder.add_mapping({"src": 2, "trg": 3})
        builder.update([(1, 2), (3, 4)])
        relation = builder.build()
        assert relation.columns == ("src", "trg")
        assert len(builder) == 3
        assert relation == Relation(("src", "trg"), [(1, 2), (2, 3), (3, 4)])

    def test_validates_width(self):
        builder = RelationBuilder(("src", "trg"))
        with pytest.raises(SchemaError):
            builder.add_row((1, 2, 3))

    def test_validates_mapping_schema(self):
        builder = RelationBuilder(("src", "trg"))
        with pytest.raises(SchemaError):
            builder.add_mapping({"src": 1, "other": 2})

    def test_rejects_bad_schemas(self):
        with pytest.raises(SchemaError):
            RelationBuilder(("src", "src"))
        with pytest.raises(SchemaError):
            RelationBuilder(("src", ""))


class TestDeltaAccumulator:
    def test_absorb_returns_only_new_rows(self):
        seed = edges([(1, 2)])
        accumulator = DeltaAccumulator(seed)
        delta = accumulator.absorb(edges([(1, 2), (2, 3)]))
        assert delta == edges([(2, 3)])
        # Absorbing the same rows again yields an empty delta.
        assert not accumulator.absorb(edges([(1, 2), (2, 3)]))
        assert accumulator.relation() == edges([(1, 2), (2, 3)])
        assert len(accumulator) == 2

    def test_matches_the_reference_union_difference_loop(self):
        seed = edges([(1, 2)])
        produced_batches = [edges([(2, 3), (1, 2)]), edges([(3, 4), (2, 3)]),
                            edges([(3, 4)])]
        fast = DeltaAccumulator(seed)
        reference = seed
        for produced in produced_batches:
            delta = produced.difference(reference)
            reference = reference.union(delta)
            assert fast.absorb(produced) == delta
        assert fast.relation() == reference

    def test_compatibility_mode_equivalence(self):
        seed = edges([(1, 2)])
        with compatibility_mode():
            compat = DeltaAccumulator(seed)
            assert compat.absorb(edges([(2, 3)])) == edges([(2, 3)])
            assert compat.relation() == edges([(1, 2), (2, 3)])

    def test_absorb_rejects_schema_mismatch_in_both_modes(self):
        """Raw row-set mixing across schemas must fail loudly, as the
        seed's produced.difference(result) did."""
        wrong = Relation(("a", "b"), [(1, 2)])
        accumulator = DeltaAccumulator(edges([(1, 2)]))
        with pytest.raises(SchemaError):
            accumulator.absorb(wrong)
        with compatibility_mode():
            compat = DeltaAccumulator(edges([(1, 2)]))
            with pytest.raises(SchemaError):
                compat.absorb(wrong)


class TestCachingSwitch:
    def test_flag_roundtrip(self):
        assert caching_enabled()
        previous = set_caching_enabled(False)
        assert previous is True
        assert not caching_enabled()
        set_caching_enabled(True)
        assert caching_enabled()

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with compatibility_mode():
                assert not caching_enabled()
                raise RuntimeError("boom")
        assert caching_enabled()

    def test_compatibility_mode_ignores_prewarmed_indexes(self):
        """An index warmed *before* the switch must not leak into the
        compatibility baseline (neither via index_on nor the has_index
        fast paths)."""
        relation = edges([(1, 2)])
        warm = relation.index_on(("src",))
        with compatibility_mode():
            assert not relation.has_index(("src",))
            assert relation.index_on(("src",)) is not warm
        assert relation.has_index(("src",))
        assert relation.index_on(("src",)) is warm

    def test_results_identical_across_modes(self):
        """The compatibility mode changes costs, never answers."""
        from repro.algebra import RelVar, closure, evaluate
        database = {"E": edges([(1, 2), (2, 3), (3, 4), (4, 2)])}
        term = closure(RelVar("E"), var="X")
        fast = evaluate(term, database)
        with compatibility_mode():
            slow = evaluate(term, database)
        assert fast == slow

    def test_switch_is_context_local_not_process_global(self):
        """Regression: the switch used to be a module-level global, so a
        benchmark entering compatibility mode flipped the semantics of
        ``DeltaAccumulator`` under concurrently running service worker
        threads mid-fixpoint.  As a ``ContextVar`` the flip is scoped:
        new threads start from the default context and stay enabled."""
        import threading

        seen_in_worker = []
        worker_may_run = threading.Event()
        worker_done = threading.Event()

        def worker():
            worker_may_run.wait(timeout=10)
            seen_in_worker.append(caching_enabled())
            accumulator = DeltaAccumulator(edges([(1, 2)]))
            # With caching enabled the accumulator takes the mutable-set
            # fast path (its compat flag is False).
            seen_in_worker.append(not accumulator._compat)
            worker_done.set()

        thread = threading.Thread(target=worker)
        with compatibility_mode():
            assert not caching_enabled()
            thread.start()
            worker_may_run.set()
            assert worker_done.wait(timeout=10)
        thread.join(timeout=10)
        assert seen_in_worker == [True, True]
