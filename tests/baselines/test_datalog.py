"""Tests of the Datalog baseline: engine, translation, magic sets, BigDatalog."""

from __future__ import annotations

import pytest

from repro.algebra import evaluate
from repro.baselines.datalog import (Atom, BigDatalogEngine, Const,
                                     MagicSetSpecializer, Program, Rule,
                                     SemiNaiveEngine, Var, graph_to_edb,
                                     ucrpq_to_datalog)
from repro.errors import DatalogError
from repro.query import parse_query, translate_query


def transitive_closure_program() -> Program:
    x, y, z = Var("x"), Var("y"), Var("z")
    program = Program(goal="tc")
    program.add(Rule(Atom("tc", (x, y)), (Atom("edge", (x, y)),)))
    program.add(Rule(Atom("tc", (x, y)),
                     (Atom("tc", (x, z)), Atom("edge", (z, y)))))
    return program


class TestSemiNaiveEngine:
    def test_transitive_closure_on_chain(self):
        edb = {"edge": {(1, 2), (2, 3), (3, 4)}}
        facts = SemiNaiveEngine().evaluate(transitive_closure_program(), edb)
        assert facts["tc"] == {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}

    def test_transitive_closure_on_cycle_terminates(self):
        edb = {"edge": {(1, 2), (2, 3), (3, 1)}}
        facts = SemiNaiveEngine().evaluate(transitive_closure_program(), edb)
        assert len(facts["tc"]) == 9

    def test_facts_in_program(self):
        program = Program(goal="p")
        program.add(Rule(Atom("p", (Const(1), Const(2)))))
        facts = SemiNaiveEngine().evaluate(program, {})
        assert facts["p"] == {(1, 2)}

    def test_constants_in_body_filter(self):
        x = Var("x")
        program = Program(goal="from_one")
        program.add(Rule(Atom("from_one", (x,)), (Atom("edge", (Const(1), x)),)))
        facts = SemiNaiveEngine().evaluate(program, {"edge": {(1, 2), (2, 3)}})
        assert facts["from_one"] == {(2,)}

    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Atom("p", (Var("x"), Var("y"))), (Atom("edge", (Var("x"), Var("z"))),))

    def test_fact_budget_enforced(self):
        edb = {"edge": {(i, i + 1) for i in range(60)}}
        with pytest.raises(DatalogError):
            SemiNaiveEngine(max_facts=100).evaluate(
                transitive_closure_program(), edb)

    def test_malformed_edb_arity_rejected(self):
        edb = {"edge": {(1, 2), (3, 4, 5)}}
        with pytest.raises(DatalogError):
            SemiNaiveEngine().evaluate(transitive_closure_program(), edb)

    def test_arity_inconsistent_derivations_rejected(self):
        """Facts derived *after* an index was built are validated on the
        incremental extend path, not only at build time."""
        x, y, z = Var("x"), Var("y"), Var("z")
        program = Program(goal="p")
        # p first derives pairs (indexes get built for arity 2), then a
        # second head of arity 1 starts producing mismatched facts.
        program.add(Rule(Atom("p", (x, y)), (Atom("edge", (x, y)),)))
        program.add(Rule(Atom("q", (x, y)),
                         (Atom("p", (x, z)), Atom("edge", (z, y)))))
        program.add(Rule(Atom("p", (x,)), (Atom("q", (x, y)),)))
        with pytest.raises(DatalogError):
            SemiNaiveEngine().evaluate(program, {"edge": {(1, 2), (2, 3)}})

    def test_incremental_indexes_match_rebuild_results(self):
        """Index build/reuse counters move, answers do not."""
        edb = {"edge": {(i, i + 1) for i in range(20)}}
        engine = SemiNaiveEngine()
        facts = engine.evaluate(transitive_closure_program(), edb)
        assert engine.stats.index_builds > 0
        assert engine.stats.index_reuses > engine.stats.index_builds
        from repro.data import compatibility_mode
        with compatibility_mode():
            reference = SemiNaiveEngine().evaluate(
                transitive_closure_program(), edb)
        assert facts["tc"] == reference["tc"]


class TestMagicSets:
    def test_bound_first_argument_is_specialized(self):
        query = parse_query("?x <- node_1 a+ ?x")
        program = ucrpq_to_datalog(query)
        specialized, report = MagicSetSpecializer().specialize(program)
        assert report.specialized
        assert not report.skipped

    def test_bound_second_argument_is_not_specialized(self):
        # Left-linear recursion cannot push a right-hand-side constant:
        # this is the Datalog limitation the paper exploits (class C2).
        query = parse_query("?x <- ?x a+ node_1")
        program = ucrpq_to_datalog(query)
        specialized, report = MagicSetSpecializer().specialize(program)
        assert report.skipped
        assert not report.specialized

    def test_specialized_program_gives_same_answers(self, small_labeled_graph):
        query = parse_query("?x <- grenoble isLocatedIn+ ?x")
        program = ucrpq_to_datalog(query)
        edb = graph_to_edb(small_labeled_graph)
        plain = SemiNaiveEngine().evaluate(program, edb)["answer"]
        specialized, _ = MagicSetSpecializer().specialize(program)
        optimized = SemiNaiveEngine().evaluate(specialized, edb)["answer"]
        assert plain == optimized

    def test_specialization_reduces_derived_facts(self, small_labeled_graph):
        query = parse_query("?x <- grenoble isLocatedIn+ ?x")
        program = ucrpq_to_datalog(query)
        edb = graph_to_edb(small_labeled_graph)
        plain_engine = SemiNaiveEngine()
        plain_engine.evaluate(program, edb)
        specialized, _ = MagicSetSpecializer().specialize(program)
        optimized_engine = SemiNaiveEngine()
        optimized_engine.evaluate(specialized, edb)
        assert optimized_engine.stats.facts_derived <= plain_engine.stats.facts_derived


class TestBigDatalogEngine:
    QUERIES = [
        "?x,?y <- ?x knows+ ?y",
        "?x <- ?x isLocatedIn+ europe",
        "?x <- grenoble isLocatedIn+ ?x",
        "?x,?y <- ?x livesIn/isLocatedIn+ ?y",
        "?x,?y <- ?x knows+/livesIn+ ?y",
        "?x,?y <- ?x knows|livesIn ?y",
        "?x,?y <- ?x -knows ?y",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_agrees_with_mu_ra_evaluation(self, query_text, small_labeled_graph):
        engine = BigDatalogEngine(small_labeled_graph)
        datalog_result = engine.run_query(query_text)
        query = parse_query(query_text)
        reference = evaluate(translate_query(query),
                             small_labeled_graph.relations())
        assert datalog_result.relation == reference

    def test_transitive_closure_is_decomposable(self, small_labeled_graph):
        engine = BigDatalogEngine(small_labeled_graph)
        result = engine.run_query("?x,?y <- ?x knows+ ?y")
        assert result.decomposable_predicates
        assert not result.non_decomposable_predicates

    def test_metrics_are_recorded(self, small_labeled_graph):
        engine = BigDatalogEngine(small_labeled_graph)
        result = engine.run_query("?x,?y <- ?x knows+ ?y")
        assert result.iterations >= 2
        assert engine.cluster.metrics.broadcasts >= 1

    def test_memory_budget_reported_as_failure(self, small_labeled_graph):
        engine = BigDatalogEngine(small_labeled_graph, max_facts=3)
        with pytest.raises(DatalogError):
            engine.run_query("?x,?y <- ?x knows+ ?y")
