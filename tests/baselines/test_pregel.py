"""Tests of the Pregel engine, the RPQ automata and the GraphX baseline."""

from __future__ import annotations

import pytest

from repro.algebra import evaluate
from repro.baselines.pregel import (GraphXRPQEngine, PregelEngine,
                                    path_to_automaton)
from repro.errors import PregelError
from repro.query import parse_path, parse_query, translate_query


class TestAutomaton:
    def test_single_label(self):
        automaton = path_to_automaton(parse_path("a"))
        assert automaton.accepts(["a"])
        assert not automaton.accepts(["b"])
        assert not automaton.accepts([])

    def test_concatenation(self):
        automaton = path_to_automaton(parse_path("a/b"))
        assert automaton.accepts(["a", "b"])
        assert not automaton.accepts(["a"])
        assert not automaton.accepts(["b", "a"])

    def test_alternation(self):
        automaton = path_to_automaton(parse_path("a|b"))
        assert automaton.accepts(["a"])
        assert automaton.accepts(["b"])
        assert not automaton.accepts(["a", "b"])

    def test_plus(self):
        automaton = path_to_automaton(parse_path("a+"))
        for length in range(1, 5):
            assert automaton.accepts(["a"] * length)
        assert not automaton.accepts([])
        assert not automaton.accepts(["a", "b"])

    def test_inverse_label_symbol(self):
        automaton = path_to_automaton(parse_path("(actedIn/-actedIn)+"))
        assert automaton.accepts(["actedIn", "-actedIn"])
        assert automaton.accepts(["actedIn", "-actedIn"] * 3)
        assert not automaton.accepts(["actedIn", "actedIn"])

    def test_grouped_alternation_under_plus(self):
        automaton = path_to_automaton(parse_path("(a|b/c)+"))
        assert automaton.accepts(["a"])
        assert automaton.accepts(["b", "c"])
        assert automaton.accepts(["a", "b", "c", "a"])
        assert not automaton.accepts(["b"])


class TestPregelEngine:
    def test_message_propagation_counts_supersteps(self):
        from repro.datasets import chain_graph
        graph = chain_graph(5)
        engine = PregelEngine(num_workers=2)

        def forward(vertex, state, messages):
            new_value = max(messages)
            outgoing = {}
            for neighbour in graph.successors(vertex, "edge"):
                outgoing[neighbour] = [new_value + 1]
            return max(state, new_value), outgoing

        states = engine.run({node: 0 for node in graph.nodes}, {0: [0]}, forward)
        assert engine.stats.supersteps == 6
        assert states[5] == 5

    def test_message_budget_enforced(self):
        from repro.datasets import chain_graph
        graph = chain_graph(20)
        engine = PregelEngine(num_workers=2, max_messages=3)

        def forward(vertex, state, messages):
            outgoing = {n: [1] for n in graph.successors(vertex, "edge")}
            return state, outgoing

        with pytest.raises(PregelError):
            engine.run({node: 0 for node in graph.nodes}, {0: [0]}, forward)


class TestGraphXBaseline:
    QUERIES = [
        "?x,?y <- ?x knows+ ?y",
        "?x <- grenoble isLocatedIn+ ?x",
        "?x <- ?x isLocatedIn+ europe",
        "?x,?y <- ?x livesIn/isLocatedIn+ ?y",
        "?x,?y <- ?x knows|livesIn ?y",
        "?x,?y <- ?x -knows ?y",
        "?x <- ?x (knows/-knows)+ ?x",
        "?x,?c <- ?x knows+ ?y, ?y livesIn ?c",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_agrees_with_mu_ra_evaluation(self, query_text, small_labeled_graph):
        engine = GraphXRPQEngine(small_labeled_graph)
        graphx_result = engine.run_query(query_text)
        reference = evaluate(translate_query(parse_query(query_text)),
                             small_labeled_graph.relations())
        assert graphx_result.relation == reference

    def test_constant_subject_sends_fewer_messages(self, small_labeled_graph):
        filtered = GraphXRPQEngine(small_labeled_graph)
        filtered.run_query("?x <- grenoble isLocatedIn+ ?x")
        unfiltered = GraphXRPQEngine(small_labeled_graph)
        unfiltered.run_query("?x,?y <- ?x isLocatedIn+ ?y")
        assert filtered._stats.messages_sent < unfiltered._stats.messages_sent

    def test_message_budget_reported_as_failure(self, small_labeled_graph):
        engine = GraphXRPQEngine(small_labeled_graph, max_messages=2)
        with pytest.raises(PregelError):
            engine.run_query("?x,?y <- ?x knows+ ?y")
