"""Unit tests of the operator-at-a-time kernel planner and its cache."""

from __future__ import annotations

import pytest

from repro.algebra.builders import closure
from repro.algebra.conditions import decompose
from repro.algebra.kernels import (KernelProgramCache, KernelUnsupported,
                                   bind_program, compile_program,
                                   default_kernel_cache, try_columnar_fixpoint)
from repro.algebra.terms import (Antijoin, Filter, Fixpoint, Join, RelVar,
                                 Union)
from repro.data.columnar import ValueDictionary, row_mode
from repro.data.predicates import Compare, Eq, In
from repro.data.relation import Relation
from repro.errors import EvaluationError


def edges(pairs):
    return Relation.from_pairs(pairs, columns=("src", "trg"))


def closure_parts(database):
    """(var, variable_part, seed) of the canonical closure fixpoint."""
    fixpoint = closure(RelVar("E"), var="X")
    decomposition = decompose(fixpoint)
    seed = database[
        decomposition.constant_part.name] if isinstance(
            decomposition.constant_part, RelVar) else None
    return fixpoint.var, decomposition.variable_part, seed


def make_resolve(database):
    from repro.algebra.evaluate import Evaluator
    return Evaluator(database).evaluate_constant


class TestCompileAndRun:
    def test_closure_matches_row_engine(self):
        database = {"E": edges([(1, 2), (2, 3), (3, 4), (2, 5)])}
        from repro.algebra.evaluate import evaluate
        term = closure(RelVar("E"), var="X")
        with row_mode():
            expected = evaluate(term, database)
        fixpoint_var, variable_part, _ = closure_parts(database)
        result = try_columnar_fixpoint(
            KernelProgramCache(), fixpoint_var, variable_part,
            database["E"], ValueDictionary(), make_resolve(database),
            max_iterations=100, nonconvergence="did not converge")
        assert result is not None
        assert result.relation == expected
        assert result.iterations >= 3
        assert result.index_builds == 1
        assert result.probes > 0

    def test_nonconvergence_raises_the_callers_message(self):
        database = {"E": edges([(1, 2), (2, 3), (3, 4)])}
        fixpoint_var, variable_part, _ = closure_parts(database)
        with pytest.raises(EvaluationError, match="my exact message"):
            try_columnar_fixpoint(
                KernelProgramCache(), fixpoint_var, variable_part,
                database["E"], ValueDictionary(), make_resolve(database),
                max_iterations=1, nonconvergence="my exact message")

    def test_row_mode_returns_none(self):
        database = {"E": edges([(1, 2), (2, 3)])}
        fixpoint_var, variable_part, _ = closure_parts(database)
        with row_mode():
            assert try_columnar_fixpoint(
                KernelProgramCache(), fixpoint_var, variable_part,
                database["E"], ValueDictionary(), make_resolve(database),
                max_iterations=10, nonconvergence="unused") is None

    def test_filter_on_codes_matches_row_engine(self):
        from repro.algebra.evaluate import evaluate
        database = {"E": edges([(1, 2), (2, 3), (3, 4), (4, 2)])}
        inner = closure(RelVar("E"), var="X")
        for predicate in (Eq("src", 1), In("src", frozenset({1, 3})),
                          Compare("trg", "<=", 3), Compare("src", "!=", 2)):
            term = Filter(predicate, inner)
            with row_mode():
                expected = evaluate(term, database)
            assert evaluate(term, database) == expected


class TestPlannerRejections:
    def _compile(self, variable_part, schema=("src", "trg"),
                 database=None):
        database = database or {"E": edges([(1, 2)])}
        return compile_program("X", variable_part, schema,
                               make_resolve(database))

    def test_unknown_variable_shape_is_rejected(self):
        # A join of two recursive sides violates Fcond linearity.
        with pytest.raises(KernelUnsupported):
            self._compile(Join(RelVar("X"), RelVar("X")))

    def test_cartesian_join_is_rejected(self):
        database = {"E": edges([(1, 2)]),
                    "F": Relation.from_pairs([(7, 8)], columns=("a", "b"))}
        with pytest.raises(KernelUnsupported):
            self._compile(Join(RelVar("X"), RelVar("F")), database=database)

    def test_zero_width_schema_is_rejected(self):
        with pytest.raises(KernelUnsupported):
            compile_program("X", RelVar("X"), (),
                            make_resolve({"E": edges([(1, 2)])}))

    def test_recursion_dependent_fixpoint_is_rejected(self):
        # A nested fixpoint over X cannot be bound as a constant, and the
        # planner has no kernel for it.
        inner = Fixpoint("Y", Union(RelVar("X"), RelVar("Y")))
        with pytest.raises(KernelUnsupported):
            self._compile(Union(RelVar("X"), inner))


class TestProgramCache:
    def test_program_is_compiled_once_then_reused(self):
        database = {"E": edges([(1, 2), (2, 3)])}
        fixpoint_var, variable_part, _ = closure_parts(database)
        cache = KernelProgramCache()
        resolve = make_resolve(database)
        first = cache.program_for(fixpoint_var, variable_part,
                                  ("src", "trg"), resolve)
        second = cache.program_for(fixpoint_var, variable_part,
                                   ("src", "trg"), resolve)
        assert first is second
        assert len(cache) == 1

    def test_unsupported_shape_is_cached_as_unsupported(self):
        database = {"E": edges([(1, 2)])}
        cache = KernelProgramCache()
        term = Join(RelVar("X"), RelVar("X"))
        resolve = make_resolve(database)
        assert cache.program_for("X", term, ("src", "trg"), resolve) is None
        assert cache.program_for("X", term, ("src", "trg"), resolve) is None
        assert len(cache) == 1

    def test_default_cache_is_shared(self):
        assert default_kernel_cache() is default_kernel_cache()

    def test_schema_drift_recompiles_against_new_schema(self):
        """One shared cache, two databases with different C schemas."""
        variable_part = Union(RelVar("X"), RelVar("C"))
        first_db = {"C": edges([(1, 2), (2, 3)])}
        second_db = {"C": Relation.from_pairs([(1, 2), (2, 3)],
                                              columns=("a", "b"))}
        cache = KernelProgramCache()
        bound = bind_program(cache, "X", variable_part, ("src", "trg"),
                             ValueDictionary(), make_resolve(first_db))
        assert bound is not None
        # Same program key, but C now resolves to a different schema: the
        # bind must detect the drift and recompile rather than gather from
        # stale column positions.  The recompiled program cannot union the
        # mismatched schemas, so the kernel path declines and the row
        # engine owns the resulting schema error.
        rebound = bind_program(cache, "X", variable_part, ("src", "trg"),
                               ValueDictionary(), make_resolve(second_db))
        assert rebound is None


class TestStructuralKernels:
    def test_rename_permutations_inside_recursion(self):
        """Closure of the reversed edge relation: every kernel run agrees.

        The closure's variable part renames the recursive side's columns
        (``trg -> m`` etc.), so this exercises the permutation kernel with
        a non-trivial column order.
        """
        database = {"E": edges([(1, 2), (2, 3), (3, 1), (2, 4)])}
        from repro.algebra.builders import swap_src_trg
        from repro.algebra.evaluate import evaluate
        term = closure(swap_src_trg(RelVar("E")), var="X")
        with row_mode():
            expected = evaluate(term, database)
        assert evaluate(term, database) == expected

    def test_antijoin_against_constant_matches_row_engine(self):
        database = {"E": edges([(1, 2), (2, 3), (3, 4)]),
                    "Blocked": edges([(1, 3)])}
        from repro.algebra.evaluate import evaluate
        inner = closure(RelVar("E"), var="X")
        term = Antijoin(inner, RelVar("Blocked"))
        with row_mode():
            expected = evaluate(term, database)
        assert evaluate(term, database) == expected
