"""Tests of the centralized evaluator, built around the paper's Example 2."""

from __future__ import annotations

import pytest

from repro.algebra import (EvaluationStats, Evaluator, Fixpoint, RelVar,
                           Union, closure, closure_from_seed, compose,
                           evaluate, naive_fixpoint)
from repro.data import Eq, Relation
from repro.errors import EvaluationError, FixpointConditionError


def paths_from_roots(database):
    """The fixpoint term of Example 2: mu(X = S U compose(X, E))."""
    return closure_from_seed(RelVar("S"), RelVar("E"), var="X")


class TestExample2:
    def test_reachable_pairs_from_roots(self, paper_database):
        term = paths_from_roots(paper_database)
        result = evaluate(term, paper_database)
        pairs = result.to_pairs("src", "trg")
        # Every reachable pair starts from a root (1 or 10).
        assert all(src in (1, 10) for src, _ in pairs)
        # Spot checks from the paper's step-by-step trace.
        assert (1, 2) in pairs and (1, 4) in pairs
        assert (1, 3) in pairs and (1, 5) in pairs
        assert (1, 6) in pairs
        assert (10, 12) in pairs and (10, 5) in pairs and (10, 6) in pairs

    def test_matches_naive_fixpoint(self, paper_database):
        term = paths_from_roots(paper_database)
        semi_naive = evaluate(term, paper_database)
        naive = naive_fixpoint(term, paper_database)
        assert semi_naive == naive

    def test_iteration_count_is_recorded(self, paper_database):
        term = paths_from_roots(paper_database)
        stats = EvaluationStats()
        evaluate(term, paper_database, stats=stats)
        assert stats.fixpoints_evaluated == 1
        assert stats.fixpoint_iterations >= 3


class TestOperators:
    def test_composition_of_start_and_edges(self, paper_database):
        term = compose(RelVar("S"), RelVar("E"))
        result = evaluate(term, paper_database)
        pairs = result.to_pairs("src", "trg")
        assert (1, 3) in pairs
        assert (1, 5) in pairs
        assert (10, 5) in pairs
        assert (10, 12) in pairs
        # Length-2 paths only: the original start edges are not included.
        assert (1, 2) not in pairs

    def test_union_and_filter(self, paper_database):
        term = Union(RelVar("S"), RelVar("E")).filter(Eq("src", 1))
        result = evaluate(term, paper_database)
        assert result.to_pairs("src", "trg") == {(1, 2), (1, 4)}

    def test_antijoin(self, paper_database):
        term = RelVar("E").antijoin(RelVar("S"))
        result = evaluate(term, paper_database)
        # Edges that are not start edges.
        expected = paper_database["E"].difference(paper_database["S"])
        assert result == expected

    def test_rename_and_antiproject(self, paper_database):
        term = RelVar("E").rename("trg", "destination").antiproject("destination")
        result = evaluate(term, paper_database)
        assert result.columns == ("src",)
        assert result.column_values("src") == {1, 2, 3, 4, 5, 10, 11, 12, 13}

    def test_unknown_relation_raises(self, paper_database):
        with pytest.raises(EvaluationError):
            evaluate(RelVar("missing"), paper_database)


class TestClosure:
    def test_left_and_right_closures_agree(self, paper_database):
        left = closure(RelVar("E"), direction="left-to-right")
        right = closure(RelVar("E"), direction="right-to-left")
        assert evaluate(left, paper_database) == evaluate(right, paper_database)

    def test_closure_contains_base_edges(self, paper_database):
        term = closure(RelVar("E"))
        result = evaluate(term, paper_database)
        assert paper_database["E"].rows <= result.rows

    def test_closure_is_transitive(self, paper_database):
        term = closure(RelVar("E"))
        pairs = evaluate(term, paper_database).to_pairs("src", "trg")
        for a, b in pairs:
            for c, d in pairs:
                if b == c:
                    assert (a, d) in pairs

    def test_closure_on_cycle_terminates(self):
        edges = Relation.from_pairs([(1, 2), (2, 3), (3, 1)], columns=("src", "trg"))
        term = closure(RelVar("E"))
        result = evaluate(term, {"E": edges})
        assert result.to_pairs("src", "trg") == {
            (a, b) for a in (1, 2, 3) for b in (1, 2, 3)
        }


class TestFixpointConditions:
    def test_non_linear_fixpoint_rejected(self, paper_database):
        non_linear = Fixpoint("X", Union(RelVar("E"), RelVar("X").join(RelVar("X"))))
        with pytest.raises(FixpointConditionError):
            evaluate(non_linear, paper_database)

    def test_non_positive_fixpoint_rejected(self, paper_database):
        non_positive = Fixpoint(
            "X", Union(RelVar("E"), RelVar("E").antijoin(RelVar("X"))))
        with pytest.raises(FixpointConditionError):
            evaluate(non_positive, paper_database)

    def test_fixpoint_without_constant_part_rejected(self, paper_database):
        no_constant = Fixpoint("X", compose(RelVar("X"), RelVar("E")))
        with pytest.raises(FixpointConditionError):
            evaluate(no_constant, paper_database)

    def test_schema_mismatch_in_variable_part_rejected(self, paper_database):
        bad = Fixpoint("X", Union(RelVar("S"), RelVar("X").rename("trg", "t2")))
        with pytest.raises(EvaluationError):
            evaluate(bad, paper_database)


class TestEvaluatorReuse:
    def test_evaluator_instance_is_reusable(self, paper_database):
        evaluator = Evaluator(paper_database)
        first = evaluator.evaluate(closure(RelVar("E")))
        second = evaluator.evaluate(closure(RelVar("S")))
        assert len(first) > len(second)
        assert evaluator.stats.fixpoints_evaluated == 2

    def test_env_binding_overrides_database(self, paper_database):
        evaluator = Evaluator(paper_database)
        override = Relation.from_pairs([(7, 8)], columns=("src", "trg"))
        result = evaluator.evaluate(RelVar("E"), env={"E": override})
        assert result == override
