"""Serving layer: concurrent clients, caches, snapshots, many graphs.

Run with::

    python examples/serve.py

Three client threads replay a skewed query mix against one
:class:`~repro.service.QueryService`; halfway through, a mutation is
applied through the service — committing a new database snapshot, so
queries over the mutated relations re-execute against the new head while
everything else keeps hitting its version-keyed cache entries.  A second
graph is then attached and served from the same instance.  The script
ends with the service's health report (queue depth, in-flight count,
per-graph commit versions, maintenance backlog), its metrics —
throughput, latency percentiles and cache hit rates — and the
process-wide metrics registry in Prometheus text format.
"""

from __future__ import annotations

import random
import threading

from repro import LabeledGraph, QueryService, Session, get_registry


def build_graph() -> LabeledGraph:
    """A small social/location graph with a few recursive shapes."""
    graph = LabeledGraph(name="serve-example")
    rng = random.Random(42)
    people = [f"p{i}" for i in range(30)]
    cities = ["lyon", "grenoble", "paris", "berlin"]
    for person in people:
        graph.add_edge(person, "knows", rng.choice(people))
        graph.add_edge(person, "livesIn", rng.choice(cities))
    for city in cities[:-1]:
        graph.add_edge(city, "isLocatedIn", "europe")
    return graph


QUERIES = [
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
    "?x,?y <- ?x knows+/livesIn ?y",
]


def client(service: QueryService, client_id: int, requests: int) -> None:
    rng = random.Random(client_id)
    for _ in range(requests):
        text = rng.choice(QUERIES)
        served = service.submit(text, block=True).result()
        label = ("result-cache hit" if served.result_cache_hit
                 else "plan-cache hit" if served.plan_cache_hit
                 else "cold")
        print(f"  client {client_id}: {served.rows:4d} rows "
              f"in {served.service_seconds * 1000:7.2f} ms  ({label})")


def main() -> None:
    graph = build_graph()
    session = Session(graph, num_workers=4, executor="threads")
    with QueryService(session, max_in_flight=3, own_engine=True) as service:
        print("== First replay: three concurrent clients ==")
        threads = [threading.Thread(target=client, args=(service, i, 4))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print("\n== Mutation: a snapshot commit, never a cache purge ==")
        before = session.database_version
        touched = service.add_edges("knows", [("p0", "p29"), ("p29", "p1")])
        print(f"  touched relations: {', '.join(touched)}")
        print(f"  head snapshot: v{before} -> v{session.database_version} "
              f"(cached entries for v{before} simply age out)")

        print("\n== Second replay: mutated relations re-execute, others hit ==")
        threads = [threading.Thread(target=client, args=(service, i, 4))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print("\n== Multi-graph: the same instance serves a second dataset ==")
        tiny = LabeledGraph(name="tiny")
        tiny.add_edge("a", "knows", "b")
        tiny.add_edge("b", "knows", "c")
        session.attach("tiny", tiny)
        served = service.submit(QUERIES[0], block=True,
                                graph="tiny").result()
        print(f"  {QUERIES[0]!r} on graph 'tiny': {served.rows} rows "
              f"(default graph untouched)")

        print("\n== Health ==")
        for key, value in service.health().items():
            print(f"  {key}: {value}")

        print("\n== Service metrics ==")
        for key, value in service.metrics.snapshot().summary().items():
            print(f"  {key}: {value}")

        print("\n== Process-wide metrics registry (Prometheus text) ==")
        print(get_registry().render_prometheus())


if __name__ == "__main__":
    main()
