"""Serving tier end to end: an HTTP server, concurrent clients, quotas.

Run with::

    python examples/serve.py

Boots an :class:`~repro.net.server.HttpServer` (the asyncio serving
tier) over a :class:`~repro.service.QueryService` on an ephemeral port,
with two tenants mapped to different graphs.  Three client threads —
each its own blocking :class:`~repro.net.client.ServiceClient`
connection — replay a skewed query mix over HTTP; halfway through, a
mutation commits a new snapshot through ``POST /v1/graphs/.../edges``,
a large result is read back with the streaming endpoint (chunked
ndjson + continuation cursor), and a rate-limited tenant runs into 429.
The script ends with ``/v1/explain``, ``/healthz`` and the Prometheus
``/metrics`` text — then drains the server like SIGTERM would.
"""

from __future__ import annotations

import random
import threading

from repro import LabeledGraph, QueryService, Session
from repro.net import HttpServer, ServerThread, Tenant, TenantRegistry
from repro.net.client import ResponseError, ServiceClient


def build_graph() -> LabeledGraph:
    """A small social/location graph with a few recursive shapes."""
    graph = LabeledGraph(name="serve-example")
    rng = random.Random(42)
    people = [f"p{i}" for i in range(30)]
    cities = ["lyon", "grenoble", "paris", "berlin"]
    for person in people:
        graph.add_edge(person, "knows", rng.choice(people))
        graph.add_edge(person, "livesIn", rng.choice(cities))
    for city in cities[:-1]:
        graph.add_edge(city, "isLocatedIn", "europe")
    return graph


QUERIES = [
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
    "?x,?y <- ?x knows+/livesIn ?y",
]

TENANTS = TenantRegistry([
    Tenant(name="analytics", token="analytics-token",
           graphs=frozenset({"default", "tiny"})),
    Tenant(name="throttled", token="throttled-token",
           rate_limit=2.0, burst=2.0),
])


def client(port: int, client_id: int, requests: int) -> None:
    rng = random.Random(client_id)
    with ServiceClient(port=port, token="analytics-token") as http:
        for _ in range(requests):
            text = rng.choice(QUERIES)
            response = http.query(text)
            cache = response["cache"]
            label = ("result-cache hit" if cache["result_hit"]
                     else "plan-cache hit" if cache["plan_hit"]
                     else "cold")
            print(f"  client {client_id}: {response['row_count']:4d} rows "
                  f"in {response['timing']['service_seconds'] * 1000:7.2f}"
                  f" ms  ({label})")


def replay(port: int) -> None:
    threads = [threading.Thread(target=client, args=(port, i, 4))
               for i in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def main() -> None:
    session = Session(build_graph(), num_workers=4, executor="threads")
    tiny = LabeledGraph(name="tiny")
    tiny.add_edge("a", "knows", "b")
    tiny.add_edge("b", "knows", "c")
    session.attach("tiny", tiny)
    service = QueryService(session, max_in_flight=3, own_engine=True)
    server = HttpServer(service, tenants=TENANTS, own_service=True)
    with ServerThread(server) as running:
        print(f"== Serving on http://127.0.0.1:{running.port} ==")
        http = ServiceClient(port=running.port, token="analytics-token")

        print("\n== First replay: three concurrent HTTP clients ==")
        replay(running.port)

        print("\n== Mutation over HTTP: a snapshot commit ==")
        committed = http.add_edges("default", "knows",
                                   [("p0", "p29"), ("p29", "p1")])
        print(f"  touched relations: {', '.join(committed['touched'])}")
        print(f"  head snapshot: v{committed['snapshot_version']} "
              f"(older cached entries simply age out)")

        print("\n== Second replay: mutated relations re-execute ==")
        replay(running.port)

        print("\n== Streaming: chunked batches + a continuation cursor ==")
        events = list(http.stream_query(QUERIES[0], batch_size=64,
                                        limit=128))
        final = events[-1]
        streamed = sum(len(event["batch"]) for event in events[:-1])
        print(f"  first response: {streamed} rows in "
              f"{len(events) - 1} chunked batches "
              f"(total {final['row_count']}, "
              f"snapshot v{final['snapshot_version']})")
        if final["next_cursor"]:
            rest = list(http.stream_query(cursor=final["next_cursor"]))
            remaining = sum(len(event["batch"]) for event in rest[:-1])
            print(f"  cursor resume: {remaining} more rows from the same "
                  f"pinned snapshot")

        print("\n== Multi-graph: the same server serves a second dataset ==")
        response = http.query(QUERIES[0], graph="tiny")
        print(f"  {QUERIES[0]!r} on graph 'tiny': "
              f"{response['row_count']} rows (default graph untouched)")

        print("\n== Quotas: the throttled tenant hits its rate limit ==")
        with ServiceClient(port=running.port,
                           token="throttled-token") as throttled:
            served = failed = 0
            retry_after = 0.0
            for _ in range(6):
                try:
                    throttled.query(QUERIES[0])
                    served += 1
                except ResponseError as error:
                    assert error.status == 429
                    failed += 1
                    retry_after = error.retry_after or retry_after
            print(f"  {served} served, {failed} answered 429 "
                  f"(Retry-After {retry_after:.0f}s)")

        print("\n== EXPLAIN ANALYZE over HTTP ==")
        explain = http.explain(QUERIES[0])
        print(f"  rows={explain['rows']} "
              f"estimated={explain['estimated_rows']} "
              f"plan_cache_hit={explain['plan_cache_hit']} "
              f"spans={len(explain['spans'])}")

        print("\n== Health ==")
        for key, value in sorted(http.health().items()):
            print(f"  {key}: {value}")

        print("\n== /metrics (Prometheus text, repro_http_* families) ==")
        print("\n".join(line for line in http.metrics().splitlines()
                        if line.startswith(("# TYPE repro_http",
                                            "repro_http"))))
        http.close()

        print("\n== Graceful shutdown: drain, then close ==")
        running.stop()
        print(f"  server state: {server.state}")


if __name__ == "__main__":
    main()
