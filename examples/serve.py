"""Serving layer: concurrent clients, caches and live mutations.

Run with::

    python examples/serve.py

Three client threads replay a skewed query mix against one
:class:`~repro.service.QueryService`; halfway through, a mutation is
applied through the service, invalidating the dependent cached results.
The script ends with the service's metrics: throughput, latency
percentiles and cache hit rates.
"""

from __future__ import annotations

import random
import threading

from repro import LabeledGraph, QueryService, Session


def build_graph() -> LabeledGraph:
    """A small social/location graph with a few recursive shapes."""
    graph = LabeledGraph(name="serve-example")
    rng = random.Random(42)
    people = [f"p{i}" for i in range(30)]
    cities = ["lyon", "grenoble", "paris", "berlin"]
    for person in people:
        graph.add_edge(person, "knows", rng.choice(people))
        graph.add_edge(person, "livesIn", rng.choice(cities))
    for city in cities[:-1]:
        graph.add_edge(city, "isLocatedIn", "europe")
    return graph


QUERIES = [
    "?x,?y <- ?x knows+ ?y",
    "?x <- ?x livesIn/isLocatedIn+ europe",
    "?x,?y <- ?x knows+/livesIn ?y",
]


def client(service: QueryService, client_id: int, requests: int) -> None:
    rng = random.Random(client_id)
    for _ in range(requests):
        text = rng.choice(QUERIES)
        served = service.submit(text, block=True).result()
        label = ("result-cache hit" if served.result_cache_hit
                 else "plan-cache hit" if served.plan_cache_hit
                 else "cold")
        print(f"  client {client_id}: {served.rows:4d} rows "
              f"in {served.service_seconds * 1000:7.2f} ms  ({label})")


def main() -> None:
    graph = build_graph()
    session = Session(graph, num_workers=4, executor="threads")
    with QueryService(session, max_in_flight=3, own_engine=True) as service:
        print("== First replay: three concurrent clients ==")
        threads = [threading.Thread(target=client, args=(service, i, 4))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print("\n== Mutation: add knows edges, dependent caches invalidate ==")
        touched = service.add_edges("knows", [("p0", "p29"), ("p29", "p1")])
        print(f"  touched relations: {', '.join(touched)}")

        print("\n== Second replay: mutated relations re-execute, others hit ==")
        threads = [threading.Thread(target=client, args=(service, i, 4))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print("\n== Service metrics ==")
        for key, value in service.metrics.snapshot().summary().items():
            print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
