"""Comparing the distributed fixpoint plans and their communication costs.

This example reproduces, on a small random graph, the core argument of the
paper (Section III / Fig. 9): the global-loop plan Pgld shuffles data at
every iteration of the recursion, while the parallel-local-loop plans Pplw
shuffle at most once — and not at all when the constant part is partitioned
on a stable column.

Run with::

    python examples/distributed_plan_comparison.py
"""

from __future__ import annotations

import time

from repro.algebra import RelVar, closure
from repro.datasets import erdos_renyi_graph
from repro.distributed import (PGLD, PPLW_POSTGRES, PPLW_SPARK, SparkCluster,
                               fixpoint_to_sql, make_plan, plan_partitioning)
from repro.algebra import schemas_of_database


def main() -> None:
    graph = erdos_renyi_graph(800, num_edges=3_200, seed=9, name="rnd_800")
    database = graph.relations()
    term = closure(RelVar("edge"))
    print(f"graph: {graph}")
    print(f"query: transitive closure edge+\n")

    decision = plan_partitioning(term, schemas_of_database(database))
    print(f"stable columns found: {decision.key_columns} "
          f"(strategy: {decision.strategy}, disjoint results: {decision.disjoint})\n")

    print(f"{'plan':14s} {'time':>8s} {'rows':>8s} {'shuffles':>9s} "
          f"{'tuples shuffled':>16s} {'iterations':>11s}")
    for strategy in (PGLD, PPLW_SPARK, PPLW_POSTGRES):
        cluster = SparkCluster(num_workers=4)
        plan = make_plan(strategy, cluster, database)
        started = time.perf_counter()
        result = plan.execute(term)
        elapsed = time.perf_counter() - started
        metrics = cluster.metrics
        iterations = metrics.global_iterations or metrics.local_iterations
        print(f"{strategy:14s} {elapsed:7.3f}s {len(result):8d} "
              f"{metrics.shuffles:9d} {metrics.tuples_shuffled:16d} "
              f"{iterations:11d}")

    print("\nWhat each worker ships to its local engine under Pplw^pg:")
    print(fixpoint_to_sql(term))


if __name__ == "__main__":
    main()
