"""Quickstart: load a graph, run a recursive query, inspect the pipeline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LabeledGraph, Session


def build_graph() -> LabeledGraph:
    """A tiny knowledge graph: people, cities and a location hierarchy."""
    graph = LabeledGraph(name="quickstart")
    graph.add_edges([
        ("ada", "knows", "grace"),
        ("grace", "knows", "alan"),
        ("alan", "knows", "kurt"),
        ("ada", "livesIn", "london"),
        ("grace", "livesIn", "new_york"),
        ("alan", "livesIn", "manchester"),
        ("london", "isLocatedIn", "england"),
        ("manchester", "isLocatedIn", "england"),
        ("new_york", "isLocatedIn", "usa"),
        ("england", "isLocatedIn", "europe"),
    ])
    return graph


def main() -> None:
    graph = build_graph()
    session = Session(graph, num_workers=4)

    print("== Transitive closure: who does ada (transitively) know? ==")
    result = session.ucrpq("?y <- ada knows+ ?y").collect()
    for row in result.relation.to_dicts():
        print(f"  ada knows+ {row['y']}")

    print("\n== Class C2 query: people living (transitively) in europe ==")
    query = session.ucrpq("?x <- ?x livesIn/isLocatedIn+ europe")
    result = query.collect()
    print(f"  answers: {sorted(result.relation.column_values('x'))}")
    print(f"  query classes: {sorted(query.classes)}")
    print(f"  logical plans explored: {result.plans_explored}")
    print(f"  physical strategy: {result.physical_strategies}")

    print("\n== How the optimizer explains itself ==")
    print(session.explain("?x <- ?x livesIn/isLocatedIn+ europe"))

    print("\n== Distribution metrics (parallel local loops vs global loop) ==")
    from repro import PGLD, PPLW_SPARK
    for strategy in (PPLW_SPARK, PGLD):
        run = session.ucrpq("?x,?y <- ?x knows+ ?y").collect(strategy=strategy)
        metrics = run.metrics
        print(f"  {strategy:12s} shuffles={metrics.shuffles:3d} "
              f"tuples_shuffled={metrics.tuples_shuffled:5d} "
              f"local_iterations={metrics.local_iterations:3d} "
              f"global_iterations={metrics.global_iterations:3d}")

    print("\n== Executor backends (concurrent Pplw local loops) ==")
    for backend in ("serial", "threads"):
        with Session(graph, num_workers=4, executor=backend) as concurrent:
            run = concurrent.ucrpq("?x,?y <- ?x knows+ ?y").collect(
                strategy=PPLW_SPARK)
            metrics = run.metrics
            print(f"  {backend:8s} tasks={metrics.tasks_launched:2d} "
                  f"waves={metrics.task_waves} "
                  f"straggler={metrics.slowest_task_seconds:.6f}s "
                  f"compute_skew={metrics.compute_skew():.2f}")

    session.close()


if __name__ == "__main__":
    main()
