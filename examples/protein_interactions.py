"""Protein-interaction exploration over a Uniprot-like graph.

The second motivating domain of the paper: biological graphs, where
recursive queries follow chains of protein interactions, shared tissues and
shared keywords.  The example also shows how the physical plan selection
reacts to the size of the relations involved in the recursion.

Run with::

    python examples/protein_interactions.py
"""

from __future__ import annotations

from repro.datasets import uniprot_constants, uniprot_graph
from repro import Session


def main() -> None:
    graph = uniprot_graph(num_edges=3_000, seed=11)
    constants = uniprot_constants(graph)
    protein = constants["protein"]
    print(f"generated {graph}: {len(graph)} edges")
    print(f"anchor protein for the filtered queries: {protein}\n")

    session = Session(graph, num_workers=4)

    print("== Interaction reachability from one protein ==")
    reachable = session.ucrpq(f"?y <- {protein} int+ ?y").collect()
    print(f"  {protein} transitively interacts with "
          f"{len(reachable.relation)} proteins")

    print("\n== Proteins occurring in the same tissues (possibly indirectly) ==")
    shared_tissue = session.ucrpq(f"?x <- {protein} (occ/-occ)+ ?x").collect()
    print(f"  proteins sharing a tissue chain with {protein}: "
          f"{len(shared_tissue.relation)}")

    print("\n== A class C6 query: interaction chain then shared keyword ==")
    result = session.ucrpq("?x,?y <- ?x int+/(hKw/-hKw)+ ?y").collect()
    print(f"  result size: {len(result.relation)} pairs")
    print(f"  plans explored: {result.plans_explored}, "
          f"selected cost: {result.estimated_cost:.0f}")
    print(f"  physical strategies: {result.physical_strategies}")
    print(f"  partitioning: {result.metrics.partitioning}, "
          f"final union skipped: {result.metrics.final_union_skipped}")

    print("\n== Physical plan selection heuristic ==")
    # Forcing a tiny per-task memory budget pushes the local loops to the
    # per-worker PostgreSQL-like engine (Pplw^pg) instead of Spark (Pplw^s).
    small_memory = Session(graph, num_workers=4, memory_per_task=100)
    forced = small_memory.ucrpq(f"?y <- {protein} int+ ?y").collect()
    default = session.ucrpq(f"?y <- {protein} int+ ?y").collect()
    print(f"  default memory budget -> {default.physical_strategies}")
    print(f"  tiny memory budget    -> {forced.physical_strategies}")


if __name__ == "__main__":
    main()
