"""Non-regular recursion: same-generation and a^n b^n queries (class C7).

These queries go beyond regular path queries, so they are written directly
as mu-RA terms with the algebra builders; the example also runs the
equivalent Datalog programs on the BigDatalog baseline and checks both
systems agree.

Run with::

    python examples/nonregular_same_generation.py
"""

from __future__ import annotations

from repro.algebra import evaluate, term_to_string
from repro.baselines.datalog import BigDatalogEngine
from repro.datasets import random_tree, relabel_for_anbn
from repro import Session
from repro.workloads import (anbn_datalog, anbn_term, same_generation_datalog,
                             same_generation_term)


def main() -> None:
    # A genealogy-like random tree: edges point child -> parent.
    tree = random_tree(300, seed=2, name="genealogy")
    print(f"generated {tree}")

    print("\n== Same generation as a mu-RA term ==")
    sg_term = same_generation_term("edge")
    print(f"  term: {term_to_string(sg_term)}")
    session = Session(tree, num_workers=4)
    result = session.term(sg_term).collect()
    print(f"  same-generation pairs: {len(result.relation)}")
    print(f"  partitioning: {result.metrics.partitioning} "
          f"(no stable column, so the split falls back to round-robin)")

    print("\n== Cross-check against the BigDatalog baseline ==")
    bigdatalog = BigDatalogEngine(tree)
    datalog_relation = bigdatalog.run_program(same_generation_datalog("edge"),
                                              ("src", "trg"))
    assert datalog_relation == result.relation
    print(f"  BigDatalog agrees on all {len(datalog_relation)} pairs")

    print("\n== a^n b^n paths on a randomly a/b-labelled graph ==")
    ab_graph = relabel_for_anbn(random_tree(300, seed=4,
                                            direction="parent-to-child"), seed=4)
    term = anbn_term("a", "b")
    mu_result = evaluate(term, ab_graph.relations())
    datalog_result = BigDatalogEngine(ab_graph).run_program(
        anbn_datalog("a", "b"), ("src", "trg"))
    assert datalog_result == mu_result
    print(f"  a^n b^n pairs: {len(mu_result)} (both systems agree)")


if __name__ == "__main__":
    main()
