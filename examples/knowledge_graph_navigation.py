"""Knowledge-graph navigation: the Yago-style workload end to end.

This example mirrors the motivating scenario of the paper: expressive
regular path queries (with filters, concatenations and nested closures)
over a knowledge graph, evaluated distributively, and compared against the
BigDatalog and GraphX baselines.

Run with::

    python examples/knowledge_graph_navigation.py
"""

from __future__ import annotations

from repro.bench import (comparison_table, run_bigdatalog, run_distmura,
                         run_graphx)
from repro.datasets import yago_like_graph
from repro import Session
from repro.workloads import yago_queries

QUERY_IDS = ("Q1", "Q3", "Q5", "Q8", "Q12", "Q16")


def main() -> None:
    graph = yago_like_graph(scale=100, seed=7)
    print(f"generated {graph}: {len(graph)} triples, "
          f"{len(graph.labels)} predicates\n")

    session = Session(graph, num_workers=4)
    queries = yago_queries(subset=QUERY_IDS)

    print("== Dist-mu-RA on a sample of the Yago workload ==")
    for query in queries:
        result = query.as_query(session).collect()
        print(f"  {query.qid:4s} classes={','.join(sorted(query.classes)):10s} "
              f"rows={len(result.relation):6d} "
              f"plans={result.plans_explored:3d} "
              f"time={result.elapsed_seconds:.3f}s")

    print("\n== Optimised plan of Q5 (filter pushed after closure reversal) ==")
    q5 = next(query for query in queries if query.qid == "Q5")
    print(session.ucrpq(q5.text).explain())

    print("\n== Three systems side by side ==")
    runs = []
    for query in queries[:4]:
        runs.append(run_distmura(graph, query))
        runs.append(run_bigdatalog(graph, query))
        runs.append(run_graphx(graph, query))
    print(comparison_table(runs, "Yago sample: Dist-mu-RA vs BigDatalog vs GraphX"))


if __name__ == "__main__":
    main()
