"""Tour of the Session API: lazy stages, snapshots, transactions, graphs.

Run with::

    python examples/session_tour.py

The session owns the simulated cluster and one or more named graphs,
each held as an immutable versioned DatabaseSnapshot; front-ends hand
out lazy handles whose pipeline stages (parse -> translate -> normalize
-> rank -> execute) run only when first inspected or when a terminal
action fires, and every handle pins the snapshot of its first stage so
results are repeatable reads under concurrent commits.
"""

from __future__ import annotations

import random

from repro import LabeledGraph, Session


def build_graph() -> LabeledGraph:
    graph = LabeledGraph(name="tour")
    rng = random.Random(7)
    people = [f"p{i}" for i in range(40)]
    cities = ["lyon", "grenoble", "paris", "berlin", "vienna"]
    for person in people:
        graph.add_edge(person, "knows", rng.choice(people))
        graph.add_edge(person, "livesIn", rng.choice(cities))
    for city in cities[:-1]:
        graph.add_edge(city, "isLocatedIn", "europe")
    return graph


def main() -> None:
    session = Session(build_graph(), num_workers=4, executor="threads")

    print("== 1. Lazy stages: nothing runs until you look ==")
    query = session.ucrpq("?x,?y <- ?x knows+ ?y")
    print(f"  handle constructed:   {query!r}")
    print(f"  ast head variables:   {[v.name for v in query.ast.head]}")
    print(f"  classes:              {sorted(query.classes) or ['C1']}")
    print(f"  canonical cache key:  {query.cache_key[:60]}...")
    plan = query.plan()
    print(f"  plan: cost={plan.cost:.1f} explored={plan.plans_explored}")
    print(f"  after staging:        {query!r}")

    print("\n== 2. Terminal actions: collect / count / exists / stream ==")
    print(f"  count():  {query.count()} pairs")
    print(f"  exists(): {query.exists()}")
    batches = [len(batch) for batch in query.stream(batch_size=100)]
    print(f"  stream(batch_size=100) batch sizes: {batches}")

    print("\n== 3. submit(): a future from the session's background worker ==")
    future = session.ucrpq("?x <- ?x livesIn/isLocatedIn+ europe").submit()
    print(f"  submitted; rows = {len(future.result().relation)}")

    print("\n== 4. The programmatic builder front-end ==")
    built = (session.relation("knows").closure()
             .concat("livesIn").between("?x", "?c"))
    text = session.ucrpq("?x,?c <- ?x knows+/livesIn ?c")
    print(f"  builder path:     {session.relation('knows').closure().concat('livesIn')}")
    print(f"  same canonical key as the text query: "
          f"{built.cache_key == text.cache_key}")
    print(f"  rows: {built.count()}")

    print("\n== 5. The Datalog front-end (differential baseline) ==")
    datalog = session.datalog("?x,?y <- ?x knows+ ?y")
    print(f"  program rules: {len(datalog.program.rules)}")
    print(f"  agrees with mu-RA front-end: "
          f"{datalog.collect().relation == query.collect().relation}")

    print("\n== 6. Prepared queries: plan once, bind many ==")
    prepared = session.prepare("?y <- :start knows+ ?y")
    print(f"  template params: {list(prepared.params)}")
    for start in ("p0", "p1", "p2", "p3"):
        bound = prepared.bind(start=start)
        bound.collect()
        hit = bound.last_plan_cache_hit
        print(f"  bind(start={start}): rows={bound.count():3d} "
              f"plan-cache {'hit' if hit else 'miss'}")
    stats = session.plan_cache.stats
    print(f"  plan cache: {stats.hits} hits / {stats.misses} misses")

    print("\n== 7. Snapshots: mutations commit new versions, never purge ==")
    pinned = session.ucrpq("?x,?y <- ?x knows ?y")
    pinned.term  # noqa: B018 - first stage run: the handle pins the head
    before = session.snapshot()
    session.add_edges("knows", [("p0", "p39")])
    after = session.snapshot()
    print(f"  head: v{before.version} -> v{after.version} "
          f"(old snapshot still readable: {len(before['knows'])} rows)")
    print(f"  pinned handle reads v{pinned.pinned_snapshot.version}: "
          f"{pinned.count()} rows; a fresh handle reads v{after.version}: "
          f"{session.ucrpq('?x,?y <- ?x knows ?y').count()} rows")
    rerun = session.ucrpq("?x,?y <- ?x knows+ ?y")
    rerun.collect()
    print(f"  new-head plan-cache hit = {rerun.last_plan_cache_hit} "
          f"(new fingerprint, re-planned against fresh statistics)")

    print("\n== 8. Transactions: batch mutations, one commit (or rollback) ==")
    with session.transaction() as txn:
        txn.add_edges("knows", [("p39", "p0"), ("p38", "p1")])
        txn.remove_edges("knows", [("p0", "p39")])
    print(f"  committed as one version: now v{session.database_version}")
    try:
        with session.transaction() as txn:
            txn.add_edges("knows", [("pX", "pY")])
            raise RuntimeError("changed my mind")
    except RuntimeError:
        pass
    print(f"  aborted batch rolled back: still v{session.database_version}")

    print("\n== 9. Multi-graph sessions: one service, many datasets ==")
    tiny = LabeledGraph(name="tiny")
    tiny.add_edge("a", "knows", "b")
    tiny.add_edge("b", "knows", "c")
    session.attach("tiny", tiny)
    scoped = session.graph("tiny")
    print(f"  graphs: {session.graphs()}")
    print(f"  same query, per graph: default={query.count()} "
          f"tiny={scoped.ucrpq('?x,?y <- ?x knows+ ?y').count()}")
    view = session.read_view()
    session.add_edges("knows", [("p5", "p7")])
    print(f"  read_view stays at v{view.database_version} while the live "
          f"session moved to v{session.database_version}")

    print("\n== 10. explain(): the whole pipeline, no execution ==")
    print(session.ucrpq("?x <- ?x livesIn/isLocatedIn+ europe").explain())

    session.close()


if __name__ == "__main__":
    main()
